"""BBR-family congestion control (Cardwell et al., ACM Queue 2016).

BBR abandons loss as the congestion signal: it explicitly estimates the two
path parameters that define the optimal operating point — the bottleneck
bandwidth ``btl_bw`` (windowed max over recent delivery-rate samples) and the
round-trip propagation delay ``rt_prop`` (windowed min over recent RTT
samples) — and paces transmissions at ``pacing_gain * btl_bw`` while capping
the data in flight at ``cwnd_gain`` times the estimated
bandwidth-delay product.

The model-based design makes BBR an interesting counterpoint to the paper's
schemes: like RemyCC it controls the *intersend time* rather than reacting to
losses, but its model is hand-derived rather than learned.  The scheme × path
× AQM study (``tools/run_study.py``) places it on the same throughput/delay
axes as the paper's Figure 4-6 baselines.

State machine (BBRv1):

* **STARTUP** — double the delivery rate each RTT (gain ``2/ln 2``) until
  three consecutive rounds fail to grow the bandwidth estimate by 25%
  ("full pipe");
* **DRAIN** — invert the startup gain to drain the queue the startup
  overshoot built, until in-flight falls to the estimated BDP;
* **PROBE_BW** — cycle pacing gain through ``[1.25, 0.75, 1 × 6]``, one
  phase per ``rt_prop``, probing for more bandwidth then draining the probe;
* **PROBE_RTT** — whenever the ``rt_prop`` estimate goes
  :data:`MIN_RTT_WINDOW` seconds without refresh, drop the window to
  :data:`MIN_CWND` packets for :data:`PROBE_RTT_DURATION` seconds so the
  queue empties and the propagation delay becomes observable again.

Differences from deployed BBR, chosen for this simulator's determinism
contract: the PROBE_BW cycle always starts at the probing phase instead of a
randomized one (no rng draw, reproducible gain schedule), delivery-rate
samples are taken once per estimated round trip from the cumulative
delivered-byte count the harness reports via
:class:`~repro.netsim.packet.AckInfo` (no per-packet delivered stamps), and
loss handling is BBRv1's: fast-retransmit events do not change the model;
only a retransmission timeout resets the connection to STARTUP.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.netsim.packet import AckInfo
from repro.protocols.base import CongestionControl

#: STARTUP/DRAIN pacing gain: doubles the sending rate every round trip.
STARTUP_GAIN = 2.0 / math.log(2.0)

#: PROBE_BW pacing-gain cycle: probe above the estimate, drain the probe,
#: then cruise at the estimate for six rounds (BBRv1's 8-phase cycle).
PROBE_BW_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)

#: Window gain outside PROBE_RTT: two BDPs absorbs delayed/stretched ACKs.
CWND_GAIN = 2.0

#: Bandwidth filter length, in estimated round trips.
BW_FILTER_ROUNDS = 10

#: Seconds the rt_prop estimate may go unrefreshed before PROBE_RTT.
MIN_RTT_WINDOW = 10.0

#: Seconds spent at the PROBE_RTT window floor.
PROBE_RTT_DURATION = 0.2

#: Window floor (packets): keeps ACK clocking alive even in PROBE_RTT.
MIN_CWND = 4.0

#: "Full pipe" detection: bandwidth must grow by this factor in a round...
FULL_BW_GROWTH = 1.25

#: ...or, after this many flat rounds, STARTUP concludes the pipe is full.
FULL_BW_ROUNDS = 3


class BBR(CongestionControl):
    """Rate-based congestion control driven by explicit path estimates.

    Parameters
    ----------
    initial_window:
        Window before the first bandwidth estimate exists (packets).
    mss_bytes:
        Segment size used to convert the byte-rate model into the harness's
        packet-denominated ``cwnd`` / ``intersend_time`` knobs.  Must match
        the topology's MSS for the BDP arithmetic to be meaningful.
    """

    name = "bbr"

    def __init__(self, initial_window: float = 10.0, mss_bytes: int = 1500):
        super().__init__(initial_window=initial_window)
        if mss_bytes <= 0:
            raise ValueError("mss_bytes must be positive")
        self.mss_bytes = mss_bytes
        self.on_flow_start(0.0)

    # ------------------------------------------------------------- lifecycle
    def on_flow_start(self, now: float) -> None:
        self.state = "startup"
        self.pacing_gain = STARTUP_GAIN
        self.cwnd_gain = STARTUP_GAIN
        #: Windowed-max bandwidth filter: (round index, bytes/sec) samples.
        self._bw_samples: list[tuple[int, float]] = []
        self.btl_bw = 0.0
        #: Windowed-min propagation delay estimate and its last refresh time.
        self.rt_prop: Optional[float] = None
        self._rt_prop_stamp = now
        #: Cumulative bytes delivered (sum of newly-acked bytes).
        self.delivered_bytes = 0
        #: Delivery-rate sampling interval: one sample per estimated round.
        self._round_count = 0
        self._round_start_time = now
        self._round_start_delivered = 0
        #: Full-pipe detection state (STARTUP exit).
        self.filled_pipe = False
        self._full_bw = 0.0
        self._full_bw_rounds = 0
        #: PROBE_BW gain-cycle position and the time the phase began.
        self.cycle_index = 0
        self._cycle_stamp = now
        #: PROBE_RTT bookkeeping: entry deadline state.
        self._probe_rtt_done_stamp: Optional[float] = None
        self._probe_rtt_round_done = False
        self._probe_rtt_round_stamp = now

    # -------------------------------------------------------------- the model
    def _bdp_packets(self) -> float:
        """Estimated bandwidth-delay product in packets (0 before estimates)."""
        if self.btl_bw <= 0.0 or self.rt_prop is None:
            return 0.0
        return self.btl_bw * self.rt_prop / self.mss_bytes

    def _update_btl_bw(self, sample_bps: float) -> None:
        """Fold one delivery-rate sample into the windowed-max filter."""
        self._bw_samples.append((self._round_count, sample_bps))
        horizon = self._round_count - BW_FILTER_ROUNDS
        while self._bw_samples and self._bw_samples[0][0] <= horizon:
            self._bw_samples.pop(0)
        self.btl_bw = max(value for _, value in self._bw_samples)

    def _update_round(self, now: float) -> bool:
        """Advance the round counter once per estimated round trip.

        Returns True when a round boundary was crossed; the delivery-rate
        sample for the finished round is folded into the bandwidth filter.
        """
        round_length = self.rt_prop if self.rt_prop is not None else 0.0
        elapsed = now - self._round_start_time
        if elapsed < max(round_length, 1e-9):
            return False
        delivered = self.delivered_bytes - self._round_start_delivered
        if delivered > 0:
            self._update_btl_bw(delivered / elapsed)
        self._round_count += 1
        self._round_start_time = now
        self._round_start_delivered = self.delivered_bytes
        return True

    def _check_full_pipe(self) -> None:
        """STARTUP exit test: three rounds without 25% bandwidth growth."""
        if self.filled_pipe:
            return
        if self.btl_bw >= self._full_bw * FULL_BW_GROWTH:
            self._full_bw = self.btl_bw
            self._full_bw_rounds = 0
            return
        self._full_bw_rounds += 1
        if self._full_bw_rounds >= FULL_BW_ROUNDS:
            self.filled_pipe = True

    # -------------------------------------------------------- state machine
    def _advance_cycle_phase(self, now: float, in_flight_packets: float) -> None:
        """Move through the PROBE_BW gain cycle, one phase per rt_prop.

        The drain phase (gain 0.75) additionally ends as soon as in-flight
        falls to the BDP — holding the deflationary gain longer than needed
        starves the flow.
        """
        round_length = self.rt_prop if self.rt_prop is not None else 0.0
        phase_over = now - self._cycle_stamp > round_length
        if self.pacing_gain < 1.0 and in_flight_packets <= self._bdp_packets():
            phase_over = True
        if not phase_over:
            return
        self.cycle_index = (self.cycle_index + 1) % len(PROBE_BW_GAINS)
        self._cycle_stamp = now
        self.pacing_gain = PROBE_BW_GAINS[self.cycle_index]

    def _enter_probe_rtt(self, now: float) -> None:
        self.state = "probe_rtt"
        self.pacing_gain = 1.0
        self.cwnd_gain = 1.0
        self._probe_rtt_done_stamp = None

    def _handle_probe_rtt(self, now: float, in_flight_packets: float) -> None:
        """Hold the window at the floor until the queue has had
        :data:`PROBE_RTT_DURATION` seconds (plus a round) to empty."""
        if self._probe_rtt_done_stamp is None:
            # Wait for in-flight to actually fall to the floor before the
            # clock starts — the draining time depends on the old window.
            if in_flight_packets <= MIN_CWND:
                self._probe_rtt_done_stamp = now + PROBE_RTT_DURATION
                self._probe_rtt_round_done = False
                self._probe_rtt_round_stamp = now
            return
        round_length = self.rt_prop if self.rt_prop is not None else 0.0
        if now - self._probe_rtt_round_stamp > round_length:
            self._probe_rtt_round_done = True
        if self._probe_rtt_round_done and now >= self._probe_rtt_done_stamp:
            self._rt_prop_stamp = now
            self._exit_probe_rtt(now)

    def _exit_probe_rtt(self, now: float) -> None:
        if self.filled_pipe:
            self.state = "probe_bw"
            self.cycle_index = 0
            self._cycle_stamp = now
            self.pacing_gain = PROBE_BW_GAINS[self.cycle_index]
            self.cwnd_gain = CWND_GAIN
        else:
            self.state = "startup"
            self.pacing_gain = STARTUP_GAIN
            self.cwnd_gain = STARTUP_GAIN

    # ------------------------------------------------------------- callbacks
    def on_ack(self, ack: AckInfo) -> None:
        now = ack.now
        if ack.newly_acked_bytes > 0:
            self.delivered_bytes += ack.newly_acked_bytes

        # rt_prop: windowed-min filter over RTT samples.  Strictly-lower
        # samples refresh the stamp (equal ones do not — at a standing
        # queue the estimate must be allowed to *expire*, or PROBE_RTT
        # never fires and an inflated rt_prop locks in an inflated BDP).
        # The expiry verdict is taken once, before the refresh, and also
        # drives PROBE_RTT entry below — refreshing first would reset the
        # stamp and the expiry could never be acted upon.
        filter_expired = now - self._rt_prop_stamp > MIN_RTT_WINDOW
        rtt = ack.rtt
        if rtt is not None and rtt > 0:
            if self.rt_prop is None or rtt < self.rt_prop or filter_expired:
                self.rt_prop = rtt
                self._rt_prop_stamp = now

        round_done = self._update_round(now)
        in_flight_packets = float(ack.in_flight)  # AckInfo counts packets

        if self.state == "startup":
            if round_done:
                self._check_full_pipe()
            if self.filled_pipe:
                self.state = "drain"
                self.pacing_gain = 1.0 / STARTUP_GAIN
                self.cwnd_gain = STARTUP_GAIN
        if self.state == "drain":
            if in_flight_packets <= self._bdp_packets():
                self.state = "probe_bw"
                self.cycle_index = 0
                self._cycle_stamp = now
                self.pacing_gain = PROBE_BW_GAINS[self.cycle_index]
                self.cwnd_gain = CWND_GAIN
        if self.state == "probe_bw":
            self._advance_cycle_phase(now, in_flight_packets)
        # rt_prop expired in any state: the queue may be hiding a shorter
        # path; only a near-empty queue makes propagation delay observable.
        if self.state != "probe_rtt" and filter_expired:
            self._enter_probe_rtt(now)
        if self.state == "probe_rtt":
            self._handle_probe_rtt(now, in_flight_packets)

        self._apply_model()

    def _apply_model(self) -> None:
        """Translate (btl_bw, rt_prop, gains) into the harness's knobs."""
        if self.btl_bw > 0.0:
            self.intersend_time = self.mss_bytes / (self.pacing_gain * self.btl_bw)
        else:
            self.intersend_time = 0.0  # no estimate yet: cwnd-limited startup
        if self.state == "probe_rtt":
            self.cwnd = MIN_CWND
            return
        bdp = self._bdp_packets()
        if bdp > 0.0:
            self.cwnd = max(self.cwnd_gain * bdp, MIN_CWND)
        else:
            self.cwnd = max(self._initial_window, MIN_CWND)

    def on_loss(self, now: float) -> None:
        """Fast-retransmit losses do not change the model (BBRv1)."""

    def on_timeout(self, now: float) -> None:
        """An RTO means the ACK clock died: restart the search from scratch."""
        self.cwnd = max(self._initial_window, MIN_CWND)
        self.intersend_time = 0.0
        self.on_flow_start(now)
