"""Fixed-rate (paced) sender — a simple open-loop baseline and test fixture.

Not a protocol the paper evaluates, but invaluable for validating the
simulator: a constant-rate source below the bottleneck rate should see zero
queueing delay, and one above it should fill the buffer.  It also serves as a
building block for simple cross-traffic in the convergence experiment.
"""

from __future__ import annotations

from repro.netsim.packet import AckInfo
from repro.protocols.base import CongestionControl


class ConstantRate(CongestionControl):
    """Open-loop sender pacing packets at a fixed rate (packets/second)."""

    name = "constant"

    def __init__(self, rate_pps: float, window: float = 1e6, mss_bytes: int = 1500):
        super().__init__(initial_window=window)
        if rate_pps <= 0:
            raise ValueError("rate_pps must be positive")
        self.rate_pps = rate_pps
        self.mss_bytes = mss_bytes
        self.intersend_time = 1.0 / rate_pps
        self._window_cap = window

    @property
    def rate_bps(self) -> float:
        """Sending rate in bits/second."""
        return self.rate_pps * self.mss_bytes * 8

    def reset(self, now: float) -> None:
        super().reset(now)
        self.cwnd = self._window_cap
        self.intersend_time = 1.0 / self.rate_pps

    def on_ack(self, ack: AckInfo) -> None:
        # Open loop: ignore feedback entirely.
        return

    def on_loss(self, now: float) -> None:
        return

    def on_timeout(self, now: float) -> None:
        # Keep the window wide open; a constant-rate source never backs off.
        self.cwnd = self._window_cap
