"""XCP: the eXplicit Control Protocol (Katabi, Handley & Rohrs, 2002).

XCP is the router-assisted baseline of the paper's evaluation.  Every data
packet carries a congestion header (the sender's current window and RTT
estimate plus a feedback field).  The router runs two controllers once per
control interval (about one average RTT):

* an **efficiency controller** computing the aggregate feedback
  ``phi = alpha * d * S - beta * Q`` where ``S`` is the spare bandwidth and
  ``Q`` the persistent queue, and
* a **fairness controller** that apportions positive feedback inversely to
  each flow's current rate (per-packet share proportional to ``rtt^2/cwnd``)
  and negative feedback proportionally to each flow's rate (share
  proportional to ``rtt``), with a small shuffling term so that flows
  converge to fairness even when the aggregate feedback is zero.

The sender simply adds the echoed per-packet feedback to its window.

One known limitation the paper calls out (§2, §5.3): XCP must be told the
outgoing link bandwidth.  For trace-driven cellular links we supply the
long-term average rate, exactly as the authors did.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.netsim.packet import AckInfo, Packet
from repro.netsim.queue import QueueDiscipline
from repro.protocols.base import CongestionControl

#: Efficiency-controller gains from the XCP paper (stability-proved values).
XCP_ALPHA = 0.4
XCP_BETA = 0.226

#: Fraction of traffic shuffled between flows each interval for fairness.
XCP_GAMMA = 0.1


class XCPRouterQueue(QueueDiscipline):
    """DropTail queue augmented with the XCP router computation.

    The router recomputes its feedback scale factors lazily whenever the
    simulation clock (passed to ``enqueue``/``dequeue``) crosses a control
    interval boundary, so it needs no direct access to the event scheduler.
    """

    def __init__(
        self,
        capacity_packets: int = 1000,
        link_rate_bps: float = 15e6,
        control_interval: float = 0.1,
        mss_bytes: int = 1500,
    ):
        super().__init__()
        if capacity_packets <= 0:
            raise ValueError("capacity must be positive")
        if link_rate_bps <= 0:
            raise ValueError("link_rate_bps must be positive")
        if control_interval <= 0:
            raise ValueError("control_interval must be positive")
        self.capacity_packets = capacity_packets
        self.capacity_pps = link_rate_bps / (mss_bytes * 8)
        self.control_interval = control_interval
        self._queue: deque[Packet] = deque()
        self._bytes = 0

        # Per-interval measurement state.
        self._interval_end = control_interval
        self._arrived_packets = 0
        self._sum_rtt_sq_over_cwnd = 0.0
        self._sum_rtt = 0.0
        self._min_queue_len = 0

        # Scale factors computed from the previous interval's measurements.
        self._xi_pos = 0.0
        self._xi_neg = 0.0
        self.last_aggregate_feedback = 0.0

    # -- controllers -----------------------------------------------------------
    def _maybe_advance_interval(self, now: float) -> None:
        while now >= self._interval_end:
            self._run_controllers()
            self._interval_end += self.control_interval

    def _run_controllers(self) -> None:
        d = self.control_interval
        input_rate_pps = self._arrived_packets / d
        spare = self.capacity_pps - input_rate_pps
        persistent_queue = self._min_queue_len
        phi = XCP_ALPHA * d * spare - XCP_BETA * persistent_queue
        self.last_aggregate_feedback = phi

        shuffled = max(0.0, XCP_GAMMA * self._arrived_packets - abs(phi))
        positive = shuffled + max(phi, 0.0)
        negative = shuffled + max(-phi, 0.0)

        self._xi_pos = positive / self._sum_rtt_sq_over_cwnd if self._sum_rtt_sq_over_cwnd > 0 else 0.0
        self._xi_neg = negative / self._sum_rtt if self._sum_rtt > 0 else 0.0

        # Reset measurement state for the next interval.
        self._arrived_packets = 0
        self._sum_rtt_sq_over_cwnd = 0.0
        self._sum_rtt = 0.0
        self._min_queue_len = len(self._queue)

    def _stamp_feedback(self, packet: Packet) -> None:
        rtt = packet.xcp_rtt if packet.xcp_rtt > 0 else self.control_interval
        cwnd = max(packet.xcp_cwnd, 1.0)
        positive = self._xi_pos * rtt * rtt / cwnd
        negative = self._xi_neg * rtt
        feedback = positive - negative
        if packet.xcp_demand > 0:
            feedback = min(feedback, packet.xcp_demand)
        packet.xcp_feedback = feedback

    # -- QueueDiscipline interface ----------------------------------------------
    def enqueue(self, packet: Packet, now: float) -> bool:
        self._maybe_advance_interval(now)
        if len(self._queue) >= self.capacity_packets:
            self.drops += 1
            packet.release()  # drop sink: tail overflow
            return False
        # Measure the arriving traffic for the efficiency/fairness controllers.
        self._arrived_packets += 1
        rtt = packet.xcp_rtt if packet.xcp_rtt > 0 else self.control_interval
        cwnd = max(packet.xcp_cwnd, 1.0)
        self._sum_rtt_sq_over_cwnd += rtt * rtt / cwnd
        self._sum_rtt += rtt
        self._stamp_feedback(packet)

        packet.enqueue_time = now
        self._queue.append(packet)
        self._bytes += packet.size_bytes
        self._min_queue_len = min(self._min_queue_len, len(self._queue))
        self.enqueues += 1
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        self._maybe_advance_interval(now)
        self._min_queue_len = min(self._min_queue_len, len(self._queue))
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._bytes -= packet.size_bytes
        self.dequeues += 1
        return packet

    def __len__(self) -> int:
        return len(self._queue)

    def bytes_queued(self) -> int:
        return self._bytes


class XCP(CongestionControl):
    """XCP endpoint: applies the router's per-packet feedback to its window."""

    name = "xcp"

    def __init__(self, initial_window: float = 2.0):
        super().__init__(initial_window=initial_window)
        self.rtt_estimate = 0.0

    def on_flow_start(self, now: float) -> None:
        self.rtt_estimate = 0.0

    def on_packet_sent(self, packet: Packet, now: float) -> None:
        # Fill in the XCP congestion header.
        packet.xcp_cwnd = self.cwnd
        packet.xcp_rtt = self.rtt_estimate
        # Demand: ask for as much as the router will give (no sender cap).
        packet.xcp_demand = float("inf")

    def on_ack(self, ack: AckInfo) -> None:
        if ack.rtt is not None:
            if self.rtt_estimate <= 0:
                self.rtt_estimate = ack.rtt
            else:
                self.rtt_estimate = 0.875 * self.rtt_estimate + 0.125 * ack.rtt
        if ack.newly_acked_bytes <= 0:
            return
        self.cwnd = max(1.0, self.cwnd + ack.xcp_feedback)

    def on_loss(self, now: float) -> None:
        # XCP rarely loses packets; fall back to a conservative halving.
        self.cwnd = max(1.0, self.cwnd / 2.0)

    def on_timeout(self, now: float) -> None:
        self.cwnd = self._initial_window
