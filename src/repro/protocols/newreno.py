"""TCP NewReno congestion control (RFC 5681 / RFC 6582 behaviour).

Slow start at the beginning, after a timeout, or after a long idle period;
additive increase of one segment per RTT in congestion avoidance; a one-half
window reduction on three duplicate ACKs.  Loss *recovery* details (partial
ACKs etc.) live in the transport harness; this module only implements the
window law the paper describes in §2.
"""

from __future__ import annotations

from repro.netsim.packet import AckInfo
from repro.protocols.base import CongestionControl


class NewReno(CongestionControl):
    """TCP NewReno window dynamics."""

    name = "newreno"

    def __init__(self, initial_window: float = 4.0, initial_ssthresh: float = float("inf")):
        super().__init__(initial_window=initial_window)
        self._initial_ssthresh = initial_ssthresh
        self.ssthresh = initial_ssthresh

    def on_flow_start(self, now: float) -> None:
        self.ssthresh = self._initial_ssthresh

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    def on_ack(self, ack: AckInfo) -> None:
        if ack.newly_acked_bytes <= 0:
            return
        # Hot path (one call per ACK): ``in_slow_start`` inlined and the
        # window read once — identical arithmetic, one attribute access and
        # no property descriptor per ACK.
        cwnd = self.cwnd
        if cwnd < self.ssthresh:
            # One segment per ACKed segment.
            self.cwnd = cwnd + 1.0
        else:
            # Approximately one segment per window per RTT.
            self.cwnd = cwnd + 1.0 / (cwnd if cwnd > 1.0 else 1.0)

    def on_loss(self, now: float) -> None:
        self.ssthresh = max(2.0, self.cwnd / 2.0)
        self.cwnd = self.ssthresh

    def on_timeout(self, now: float) -> None:
        self.ssthresh = max(2.0, self.cwnd / 2.0)
        self.cwnd = self._initial_window
