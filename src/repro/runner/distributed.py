"""Crash-safe distributed evaluation: lease queue, heartbeats, workers.

The design phase (§4.3) evaluates hundreds of independent
:class:`~repro.runner.jobs.SimJob`\\ s per optimizer round; this module
fans them out over the network instead of a local process pool, with the
same contracts every other backend keeps — submission order and
bit-identical results — surviving worker crashes, disconnects, hangs and
corrupted frames along the way:

* :class:`LeaseQueue` — the coordinator's **pure** scheduling state
  machine.  Work is handed out as *leases* with deadlines; an expired
  lease is re-queued, a worker that stops heartbeating is evicted and its
  leases charged, and a late or duplicate result for a dead lease is
  discarded idempotently by chunk id.  Every failure verdict goes through
  the shared :func:`~repro.runner.resilience.record_failure` machinery, so
  retry, bisection, solo confirmation and poison-job condemnation behave
  exactly as in :class:`~repro.runner.resilience.ResilientPoolBackend`.
  Every method takes ``now`` explicitly — tests drive it with a
  :class:`~repro.runner.resilience.FakeClock` and never sleep.
* :class:`QueueBackend` — an :class:`~repro.runner.backends.ExecutionBackend`
  that embeds the coordinator: it binds ``host:port``, and ``run_batch``
  pumps a single-threaded ``selectors`` event loop until every slot is
  filled.  Results are optionally served from / stored to a
  content-addressed :class:`~repro.runner.cache.ResultCache`.  If no
  worker stays registered for ``worker_wait`` seconds, the batch
  *degrades* to in-process serial execution rather than hanging forever.
* :func:`run_worker` — the worker loop (``python -m
  repro.runner.distributed worker host:port``): register, poll for a
  chunk, execute it via the same entry point the process pool uses,
  heartbeat from a side thread while computing, report the result, and
  reconnect with deterministic exponential backoff when the coordinator
  goes away.  Workers arm :func:`~repro.runner.faults.worker_fault_plan`
  from the environment and apply *network* fault modes at the transport
  (disconnect mid-chunk, stalled heartbeat, corrupt frame, duplicate
  result), so the chaos tests exercise every recovery path
  deterministically.

Wire protocol (see :mod:`repro.runner.wire` for framing): JSON messages —
``register``/``registered``, ``heartbeat``/``ok``, ``poll`` answered by
``idle`` or ``chunk`` (pickled jobs, a ``chunk_id``, the batch serial and
the attempt number), ``result``/``error`` answered by
``accepted``/``stale``/``rejected``.  Chunk ids are fresh per dispatch
and results must echo the batch serial, so a straggler from a previous
lease — or a previous batch — can never land in the wrong slot.
"""

from __future__ import annotations

import argparse
import os
import selectors
import signal
import socket
import subprocess
import sys
import threading
from dataclasses import dataclass
from types import FrameType
from typing import Any, Optional, Sequence

from repro.runner import wire
from repro.runner.backends import (
    ExecutionBackend,
    _execute_job_chunk,
    prepare_jobs,
)
from repro.runner.cache import ResultCache, batch_cache_keys
from repro.runner.faults import (
    mark_transport_worker,
    mark_worker_process,
    worker_fault_plan,
)
from repro.runner.jobs import SimJob, SimJobResult, chunk_result_mismatch
from repro.runner.resilience import (
    BatchEntry,
    Clock,
    JobFailure,
    MonotonicClock,
    PoisonJobError,
    RetryPolicy,
    _WorkItem,
    record_failure,
    run_item_serially,
)

DEFAULT_LEASE_TIMEOUT = 60.0
DEFAULT_HEARTBEAT_TIMEOUT = 15.0
DEFAULT_WORKER_WAIT = 60.0
DEFAULT_IO_TIMEOUT = 30.0
#: Coordinator event-loop granularity when idle (real clock: 5 ms).
DEFAULT_POLL_INTERVAL = 0.005
#: How long an idle worker waits before polling again.
DEFAULT_IDLE_POLL = 0.05


# ---------------------------------------------------------------------------
# The lease queue: pure scheduling state, no I/O, no clock of its own
# ---------------------------------------------------------------------------
@dataclass
class _Lease:
    """One chunk out with one worker, until ``deadline``."""

    chunk_id: int
    item: _WorkItem
    worker_id: str
    deadline: float


class LeaseQueue:
    """Lease-based scheduling of one batch's job chunks — pure state.

    Holds the batch's result slots, the pending work items, the
    outstanding leases and the registered workers.  All transitions take
    ``now`` as an argument (monotonic seconds), so the queue is fully
    deterministic under test: drive it with a fake clock and no real time
    passes.

    Robustness semantics:

    * ``lease`` hands the next pending chunk to a worker under a **fresh
      chunk id** with a deadline of ``now + lease_timeout``;
    * ``expire`` charges overdue leases (kind ``"timeout"``) and re-queues
      their items, and evicts workers silent for ``heartbeat_timeout``,
      charging their leases;
    * ``disconnect`` (a dropped connection) charges the worker's leases as
      ``"crash"`` — the same verdict a local pool break gets;
    * ``complete`` is **idempotent**: a result whose chunk id has no live
      lease (expired, already completed, or from a duplicate send) is
      discarded as ``"stale"``; a result that fails validation is
      ``"rejected"`` and charged as ``"corrupt"``.

    Failure charging is :func:`~repro.runner.resilience.record_failure`:
    retry while attempts remain, then bisect multi-job chunks, solo-confirm
    single suspects on a fresh lease, and only then condemn a
    :class:`~repro.runner.resilience.JobFailure` into its result slot.
    """

    def __init__(
        self,
        jobs: Sequence[SimJob],
        *,
        chunk_jobs: int,
        max_attempts: int,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
    ) -> None:
        if chunk_jobs <= 0:
            raise ValueError("chunk_jobs must be positive")
        if max_attempts <= 0:
            raise ValueError("max_attempts must be positive")
        if lease_timeout <= 0 or heartbeat_timeout <= 0:
            raise ValueError("lease/heartbeat timeouts must be positive")
        self.lease_timeout = lease_timeout
        self.heartbeat_timeout = heartbeat_timeout
        self._max_attempts = max_attempts
        self.results: list[Optional[BatchEntry]] = [None] * len(jobs)
        self.failures: list[JobFailure] = []
        self._pending: list[_WorkItem] = [
            _WorkItem(start, tuple(jobs[start : start + chunk_jobs]))
            for start in range(0, len(jobs), chunk_jobs)
        ]
        self._leases: dict[int, _Lease] = {}
        self._workers: dict[str, float] = {}  # worker id -> last heard from
        self._next_chunk_id = 0
        # Observability counters (asserted by tests, reported by the CLI).
        self.completed_chunks = 0
        self.expired_leases = 0
        self.evicted_workers = 0
        self.stale_results = 0

    # -- workers -------------------------------------------------------------
    def register(self, worker_id: str, now: float) -> None:
        self._workers[worker_id] = now

    def is_registered(self, worker_id: str) -> bool:
        return worker_id in self._workers

    def heartbeat(self, worker_id: str, now: float) -> bool:
        """Refresh a worker's liveness; ``False`` if it must re-register."""
        if worker_id not in self._workers:
            return False
        self._workers[worker_id] = now
        return True

    def live_worker_count(self) -> int:
        return len(self._workers)

    def disconnect(
        self, worker_id: str, now: float, kind: str = "crash", message: str = ""
    ) -> None:
        """Evict a worker and charge every lease it held."""
        self._workers.pop(worker_id, None)
        for chunk_id, lease in list(self._leases.items()):
            if lease.worker_id == worker_id:
                del self._leases[chunk_id]
                self._charge(
                    lease.item,
                    kind,
                    message or f"worker {worker_id} disconnected mid-lease",
                )

    # -- scheduling ----------------------------------------------------------
    def lease(self, worker_id: str, now: float) -> Optional[tuple[int, _WorkItem]]:
        """Hand the next pending chunk to ``worker_id``, or ``None`` if idle.

        Items whose slots were already filled (defensive: overlapping
        coverage cannot normally arise) are skipped.  The chunk id is fresh
        per dispatch — re-leasing the same item after an expiry yields a
        *different* id, which is what makes late results from the old lease
        discardable.
        """
        self._workers[worker_id] = now
        while self._pending:
            item = self._pending.pop(0)
            if self._satisfied(item):
                continue
            chunk_id = self._next_chunk_id
            self._next_chunk_id += 1
            self._leases[chunk_id] = _Lease(
                chunk_id, item, worker_id, now + self.lease_timeout
            )
            return chunk_id, item
        return None

    def complete(self, chunk_id: int, chunk_results: object, now: float) -> str:
        """Accept one chunk's results: ``accepted`` / ``stale`` / ``rejected``."""
        lease = self._leases.get(chunk_id)
        if lease is None:
            # Expired, already completed, or a duplicate send: the lease is
            # gone, so the result has nowhere legitimate to land.  Discard.
            self.stale_results += 1
            return "stale"
        if lease.worker_id in self._workers:
            self._workers[lease.worker_id] = now
        del self._leases[chunk_id]
        item = lease.item
        mismatch = self._validate(item, chunk_results)
        if mismatch is not None:
            self._charge(item, "corrupt", mismatch)
            return "rejected"
        assert isinstance(chunk_results, list)
        for offset, result in enumerate(chunk_results):
            self.results[item.start + offset] = result
        self.completed_chunks += 1
        return "accepted"

    def fail(self, chunk_id: int, kind: str, message: str, now: float) -> bool:
        """Charge a worker-reported failure; ``False`` if the lease is gone."""
        lease = self._leases.pop(chunk_id, None)
        if lease is None:
            self.stale_results += 1
            return False
        if lease.worker_id in self._workers:
            self._workers[lease.worker_id] = now
        self._charge(lease.item, kind, message)
        return True

    def expire(self, now: float) -> None:
        """Reap overdue leases and heartbeat-silent workers."""
        for chunk_id, lease in list(self._leases.items()):
            if lease.deadline <= now:
                del self._leases[chunk_id]
                self.expired_leases += 1
                self._charge(
                    lease.item,
                    "timeout",
                    f"lease {chunk_id} on worker {lease.worker_id} exceeded "
                    f"lease_timeout={self.lease_timeout}s",
                )
        for worker_id, last_seen in list(self._workers.items()):
            if now - last_seen > self.heartbeat_timeout:
                self.evicted_workers += 1
                self.disconnect(
                    worker_id,
                    now,
                    kind="timeout",
                    message=(
                        f"worker {worker_id} evicted: silent for "
                        f"{now - last_seen:.3f}s "
                        f"(heartbeat_timeout={self.heartbeat_timeout}s)"
                    ),
                )

    def drain(self) -> list[_WorkItem]:
        """Abandon all leases and hand back every unfinished item (degrade)."""
        items = [lease.item for lease in self._leases.values()]
        items.extend(self._pending)
        self._leases.clear()
        self._pending.clear()
        return [item for item in items if not self._satisfied(item)]

    @property
    def done(self) -> bool:
        return all(entry is not None for entry in self.results)

    # -- internals -----------------------------------------------------------
    def _satisfied(self, item: _WorkItem) -> bool:
        return all(
            self.results[item.start + offset] is not None
            for offset in range(len(item.jobs))
        )

    def _validate(self, item: _WorkItem, chunk_results: object) -> Optional[str]:
        if not isinstance(chunk_results, list) or not all(
            isinstance(result, SimJobResult) for result in chunk_results
        ):
            return (
                f"worker returned {type(chunk_results).__name__!s} instead of "
                "a list of SimJobResult"
            )
        return chunk_result_mismatch(list(item.jobs), chunk_results)

    def _charge(self, item: _WorkItem, kind: str, message: str) -> None:
        # One list serves as both retry and solo queue: a solo item on a
        # fresh lease runs alone on its worker, which is all solo
        # confirmation needs here (failures are charged per worker).
        record_failure(
            item,
            kind,
            message,
            max_attempts=self._max_attempts,
            results=self.results,
            failures=self.failures,
            retry_queue=self._pending,
            solo_queue=self._pending,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        filled = sum(1 for entry in self.results if entry is not None)
        return (
            f"LeaseQueue({filled}/{len(self.results)} slots, "
            f"{len(self._pending)} pending, {len(self._leases)} leased, "
            f"{len(self._workers)} workers)"
        )


# ---------------------------------------------------------------------------
# The coordinator backend
# ---------------------------------------------------------------------------
class _Connection:
    """Per-socket coordinator state: reassembly buffer + outbound queue."""

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.frames = wire.FrameBuffer()
        self.outbound = bytearray()
        self.worker_id: Optional[str] = None
        self.closed = False


class QueueBackend(ExecutionBackend):
    """Distributed execution over a lease-based work queue (spec ``queue:``).

    Embeds the coordinator: construction binds ``host:port`` (port ``0``
    picks an ephemeral port, readable from :attr:`port`); each
    ``run_batch`` call pumps a single-threaded event loop that leases job
    chunks to whatever workers are registered, until every result slot is
    filled.  Workers connect with ``python -m repro.runner.distributed
    worker host:port``.

    Memory-isolated like the process pool (``shares_memory = False``):
    jobs are prepared with the shared
    :func:`~repro.runner.backends.prepare_jobs` pass, and training
    statistics come back as explicit deltas.  Pass a
    :class:`~repro.runner.cache.ResultCache` to serve repeat evaluations
    from content-addressed storage instead of any worker.

    If no worker is registered for ``worker_wait`` consecutive seconds
    (never having registered counts from the first pump), the batch
    **degrades**: the remaining items run serially in this process, so a
    run without workers completes instead of hanging — slower, never
    wrong.  Failures that survive retry/bisection/solo confirmation raise
    :class:`~repro.runner.resilience.PoisonJobError` (``on_failure="raise"``)
    or land as :class:`~repro.runner.resilience.JobFailure` entries
    (``on_failure="return"``), matching the resilient pool.
    """

    shares_memory = False

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        chunk_jobs: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        clock: Optional[Clock] = None,
        cache: Optional[ResultCache] = None,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
        worker_wait: float = DEFAULT_WORKER_WAIT,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        on_failure: str = "raise",
    ) -> None:
        if on_failure not in ("raise", "return"):
            raise ValueError("on_failure must be 'raise' or 'return'")
        if chunk_jobs is not None and chunk_jobs <= 0:
            raise ValueError("chunk_jobs must be positive")
        if worker_wait <= 0 or poll_interval <= 0:
            raise ValueError("worker_wait and poll_interval must be positive")
        self.chunk_jobs = chunk_jobs
        self.retry = retry if retry is not None else RetryPolicy()
        self.clock: Clock = clock if clock is not None else MonotonicClock()
        self.cache = cache
        self.lease_timeout = lease_timeout
        self.heartbeat_timeout = heartbeat_timeout
        self.heartbeat_interval = max(0.05, heartbeat_timeout / 5.0)
        self.worker_wait = worker_wait
        self.poll_interval = poll_interval
        self.on_failure = on_failure
        self.degraded = False
        self._batch_serial = 0
        self._closed = False
        listener = socket.create_server((host, port), backlog=64)
        listener.setblocking(False)
        self._listener = listener
        self.host, self.port = listener.getsockname()[:2]
        self._selector = selectors.DefaultSelector()
        self._selector.register(listener, selectors.EVENT_READ, data=None)

    @property
    def address(self) -> str:
        """``host:port`` as workers should be pointed at it."""
        return f"{self.host}:{self.port}"

    # -- the batch loop ------------------------------------------------------
    def run_batch(self, jobs: Sequence[SimJob]) -> list[SimJobResult]:
        if self._closed:
            raise RuntimeError("QueueBackend is closed")
        prepared = prepare_jobs(jobs)
        if not prepared:
            return []
        self._batch_serial += 1
        keys: list[Optional[str]] = (
            batch_cache_keys(prepared)
            if self.cache is not None
            else [None] * len(prepared)
        )
        results: list[Optional[BatchEntry]] = [None] * len(prepared)
        miss_slots: list[int] = []
        for slot, (job, key) in enumerate(zip(prepared, keys)):
            cached = (
                self.cache.get(key)
                if self.cache is not None and key is not None
                else None
            )
            if cached is not None:
                cached.job_id = job.job_id
                results[slot] = cached
            else:
                miss_slots.append(slot)
        failures: list[JobFailure] = []
        if miss_slots:
            miss_jobs = [prepared[slot] for slot in miss_slots]
            queue = LeaseQueue(
                miss_jobs,
                chunk_jobs=self._chunk_size(len(miss_jobs)),
                max_attempts=self.retry.max_attempts,
                lease_timeout=self.lease_timeout,
                heartbeat_timeout=self.heartbeat_timeout,
            )
            self._pump(queue)
            for dense, slot in enumerate(miss_slots):
                entry = queue.results[dense]
                results[slot] = entry
                key = keys[slot]
                if (
                    self.cache is not None
                    and key is not None
                    and isinstance(entry, SimJobResult)
                ):
                    self.cache.put(key, entry)
            failures = queue.failures
        if failures and self.on_failure == "raise":
            raise PoisonJobError(failures, total_jobs=len(prepared))
        return results  # type: ignore[return-value]  # every slot filled above

    def _chunk_size(self, n_jobs: int) -> int:
        if self.chunk_jobs is not None:
            return self.chunk_jobs
        # The worker count is unknown up front (workers come and go), so
        # target a fixed fan-out per batch: enough chunks for load balance
        # across a handful of workers, few enough to amortize framing.
        return max(1, -(-n_jobs // 16))

    def _pump(self, queue: LeaseQueue) -> None:
        """Drive the event loop until every result slot is filled."""
        no_worker_since: Optional[float] = None
        while not queue.done:
            progressed = self._pump_io(queue)
            now = self.clock.now()
            queue.expire(now)
            if queue.done:
                break
            if queue.live_worker_count() == 0:
                if no_worker_since is None:
                    no_worker_since = now
                elif now - no_worker_since >= self.worker_wait:
                    self._degrade(queue)
                    return
            else:
                no_worker_since = None
            if not progressed:
                self.clock.sleep(self.poll_interval)

    def _pump_io(self, queue: LeaseQueue) -> bool:
        events = self._selector.select(timeout=0)
        for key, mask in events:
            if key.data is None:
                self._accept()
                continue
            conn = key.data
            assert isinstance(conn, _Connection)
            if mask & selectors.EVENT_READ and not conn.closed:
                self._service_read(conn, queue)
            if mask & selectors.EVENT_WRITE and not conn.closed:
                self._flush(conn, queue)
        return bool(events)

    def _accept(self) -> None:
        try:
            sock, _addr = self._listener.accept()
        except OSError:
            return
        sock.setblocking(False)
        self._selector.register(
            sock, selectors.EVENT_READ, data=_Connection(sock)
        )

    def _service_read(self, conn: _Connection, queue: LeaseQueue) -> None:
        try:
            data = conn.sock.recv(65536)
        except BlockingIOError:
            return
        except OSError as exc:
            self._drop(conn, queue, kind="crash", reason=repr(exc))
            return
        if not data:
            self._drop(conn, queue, kind="crash", reason="connection closed")
            return
        conn.frames.feed(data)
        while not conn.closed:
            try:
                payload = conn.frames.next_frame()
            except wire.FrameError as exc:
                # A corrupt frame poisons the stream offset: charge the
                # worker's leases and drop the connection; the worker
                # reconnects and re-registers.
                self._drop(conn, queue, kind="corrupt", reason=str(exc))
                return
            if payload is None:
                return
            try:
                message = wire.decode_message(payload)
            except wire.FrameError as exc:
                self._drop(conn, queue, kind="corrupt", reason=str(exc))
                return
            self._handle_message(conn, message, queue)

    def _handle_message(
        self, conn: _Connection, message: dict[str, Any], queue: LeaseQueue
    ) -> None:
        now = self.clock.now()
        mtype = message["type"]
        if mtype == "register":
            worker_id = str(message.get("worker", ""))
            if not worker_id:
                self._drop(conn, queue, kind="corrupt", reason="empty worker id")
                return
            conn.worker_id = worker_id
            queue.register(worker_id, now)
            self._send(
                conn,
                {
                    "type": "registered",
                    "heartbeat_interval": self.heartbeat_interval,
                    "batch": self._batch_serial,
                },
                queue,
            )
            return
        if mtype == "heartbeat":
            alive = conn.worker_id is not None and queue.heartbeat(
                conn.worker_id, now
            )
            self._send(
                conn, {"type": "ok" if alive else "unknown-worker"}, queue
            )
            return
        if mtype == "poll":
            if conn.worker_id is None or not queue.is_registered(conn.worker_id):
                self._send(conn, {"type": "unknown-worker"}, queue)
                return
            leased = queue.lease(conn.worker_id, now)
            if leased is None:
                self._send(
                    conn,
                    {"type": "idle", "retry_after": DEFAULT_IDLE_POLL},
                    queue,
                )
                return
            chunk_id, item = leased
            self._send(
                conn,
                {
                    "type": "chunk",
                    "batch": self._batch_serial,
                    "chunk_id": chunk_id,
                    "attempt": item.attempt,
                    "jobs": wire.encode_payload(list(item.jobs)),
                },
                queue,
            )
            return
        if mtype == "result":
            if message.get("batch") != self._batch_serial:
                # A straggler from a previous batch: its chunk id namespace
                # is dead, so the result cannot be placed.  Idempotent drop.
                queue.stale_results += 1
                self._send(conn, {"type": "stale"}, queue)
                return
            chunk_id = int(message.get("chunk_id", -1))
            try:
                chunk_results = wire.decode_payload(str(message.get("results", "")))
            except wire.FrameError as exc:
                queue.fail(chunk_id, "corrupt", str(exc), now)
                self._send(conn, {"type": "rejected"}, queue)
                return
            status = queue.complete(chunk_id, chunk_results, now)
            self._send(conn, {"type": status}, queue)
            return
        if mtype == "error":
            if message.get("batch") == self._batch_serial:
                queue.fail(
                    int(message.get("chunk_id", -1)),
                    "exception",
                    str(message.get("message", "")),
                    now,
                )
            self._send(conn, {"type": "ok"}, queue)
            return
        self._send(
            conn,
            {"type": "error", "message": f"unknown message type {mtype!r}"},
            queue,
        )

    def _send(
        self, conn: _Connection, message: dict[str, Any], queue: LeaseQueue
    ) -> None:
        conn.outbound += wire.frame(wire.encode_message(message))
        self._flush(conn, queue)

    def _flush(self, conn: _Connection, queue: LeaseQueue) -> None:
        if conn.outbound:
            try:
                sent = conn.sock.send(conn.outbound)
                del conn.outbound[:sent]
            except BlockingIOError:
                pass
            except OSError as exc:
                self._drop(conn, queue, kind="crash", reason=repr(exc))
                return
        mask = selectors.EVENT_READ
        if conn.outbound:
            mask |= selectors.EVENT_WRITE
        self._selector.modify(conn.sock, mask, data=conn)

    def _drop(
        self, conn: _Connection, queue: LeaseQueue, kind: str, reason: str
    ) -> None:
        if conn.closed:
            return
        conn.closed = True
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        conn.sock.close()
        if conn.worker_id is not None and queue.is_registered(conn.worker_id):
            queue.disconnect(
                conn.worker_id,
                self.clock.now(),
                kind=kind,
                message=f"connection to worker {conn.worker_id} lost: {reason}",
            )

    def _degrade(self, queue: LeaseQueue) -> None:
        """No workers for too long: finish the batch in this process."""
        self.degraded = True
        for item in queue.drain():
            run_item_serially(item, queue.results, queue.failures)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for key in list(self._selector.get_map().values()):
            if isinstance(key.data, _Connection):
                key.data.closed = True
                key.data.sock.close()
        self._selector.close()
        self._listener.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueueBackend({self.address}, retry={self.retry!r}, "
            f"cache={'yes' if self.cache is not None else 'no'}, "
            f"degraded={self.degraded})"
        )


# ---------------------------------------------------------------------------
# The worker
# ---------------------------------------------------------------------------
class _InjectedDisconnect(ConnectionError):
    """Raised by the worker to simulate a mid-chunk connection loss."""


def run_worker(
    address: tuple[str, int],
    *,
    worker_id: Optional[str] = None,
    retry: Optional[RetryPolicy] = None,
    clock: Optional[Clock] = None,
    io_timeout: float = DEFAULT_IO_TIMEOUT,
    max_consecutive_failures: Optional[int] = None,
) -> None:
    """The worker main loop: connect, work, reconnect with backoff, forever.

    Arms fault injection from the environment
    (:func:`~repro.runner.faults.worker_fault_plan`) and marks this process
    as a transport worker, so *network* fault modes are applied here at
    the socket layer instead of being aliased to local faults.  Each
    connection failure — including injected ones — tears the session down
    and reconnects after the :class:`RetryPolicy`'s deterministic backoff;
    the attempt counter resets once a session makes progress.

    ``max_consecutive_failures`` (``None`` = retry forever) bounds how many
    back-to-back failed sessions are tolerated before giving up with the
    last error — useful under a supervisor, pointless under a test that
    just kills the process.
    """
    mark_worker_process()
    mark_transport_worker()
    clock = clock if clock is not None else MonotonicClock()
    retry = retry if retry is not None else RetryPolicy()
    worker_id = worker_id if worker_id else f"w{os.getpid()}"
    streak = 0
    while True:
        progressed: list[bool] = [False]
        try:
            _worker_session(
                address,
                worker_id,
                clock=clock,
                io_timeout=io_timeout,
                progressed=progressed,
            )
        except (OSError, wire.FrameError, wire.ConnectionClosed) as exc:
            # A session that registered successfully resets the streak: the
            # coordinator was reachable, so this failure starts a new
            # backoff schedule instead of continuing a dead one.
            streak = 1 if progressed[0] else streak + 1
            if (
                max_consecutive_failures is not None
                and streak >= max_consecutive_failures
            ):
                raise
            # _InjectedDisconnect is a ConnectionError, so injected network
            # faults reconnect through the same deterministic schedule.
            clock.sleep(
                retry.backoff_seconds(min(streak, 10), key=f"reconnect:{worker_id}")
            )
            del exc


def _worker_session(
    address: tuple[str, int],
    worker_id: str,
    *,
    clock: Clock,
    io_timeout: float,
    progressed: Optional[list[bool]] = None,
) -> None:
    """One connection's lifetime: register, then poll/execute until it dies."""
    sock = wire.connect(address, io_timeout)
    try:
        reply = _register(sock, worker_id)
        if progressed is not None:
            progressed[0] = True
        heartbeat_interval = float(
            reply.get("heartbeat_interval", DEFAULT_HEARTBEAT_TIMEOUT / 5.0)
        )
        lock = threading.Lock()
        while True:
            with lock:
                wire.send_message(sock, {"type": "poll", "worker": worker_id})
                reply = wire.recv_message(sock)
            rtype = reply["type"]
            if rtype == "unknown-worker":
                # Evicted (or a fresh batch's queue): identity is cheap,
                # re-register and carry on.
                _register(sock, worker_id)
                continue
            if rtype == "idle":
                clock.sleep(float(reply.get("retry_after", DEFAULT_IDLE_POLL)))
                continue
            if rtype == "chunk":
                _execute_and_report(
                    sock,
                    lock,
                    reply,
                    worker_id=worker_id,
                    clock=clock,
                    heartbeat_interval=heartbeat_interval,
                )
                continue
            raise wire.FrameError(f"unexpected coordinator reply {rtype!r}")
    finally:
        sock.close()


def _register(sock: socket.socket, worker_id: str) -> dict[str, Any]:
    wire.send_message(sock, {"type": "register", "worker": worker_id})
    reply = wire.recv_message(sock)
    if reply.get("type") != "registered":
        raise wire.FrameError(
            f"coordinator rejected registration: {reply.get('type')!r}"
        )
    return reply


def _execute_and_report(
    sock: socket.socket,
    lock: threading.Lock,
    message: dict[str, Any],
    *,
    worker_id: str,
    clock: Clock,
    heartbeat_interval: float,
) -> None:
    """Run one leased chunk and report, applying network faults in transit."""
    jobs = wire.decode_payload(str(message["jobs"]))
    chunk_id = int(message["chunk_id"])
    attempt = int(message["attempt"])
    batch = int(message["batch"])
    plan = worker_fault_plan()
    net_mode: Optional[str] = None
    if plan is not None and jobs:
        net_mode = plan.network_mode_for(jobs[0].job_id, attempt)
    if net_mode == "disconnect":
        # Vanish mid-chunk: the coordinator sees EOF and charges the lease
        # as a crash; we reconnect through the normal backoff path.
        raise _InjectedDisconnect(
            f"injected disconnect before chunk {chunk_id} (attempt {attempt})"
        )

    stop = threading.Event()
    beat_errors: list[BaseException] = []

    def beat() -> None:
        while not stop.wait(heartbeat_interval):
            try:
                with lock:
                    wire.send_message(
                        sock, {"type": "heartbeat", "worker": worker_id}
                    )
                    wire.recv_message(sock)
            except BaseException as exc:  # surface after the chunk finishes
                beat_errors.append(exc)
                return

    heartbeats: Optional[threading.Thread] = None
    if net_mode != "stall":
        # A stalled worker is one that goes silent while computing: the
        # injected stall suppresses heartbeats entirely so the coordinator's
        # eviction path is what recovers the lease.
        heartbeats = threading.Thread(target=beat, daemon=True)
        heartbeats.start()
    error: Optional[BaseException] = None
    results: list[SimJobResult] = []
    try:
        results = _execute_job_chunk(list(jobs), attempt)
    except Exception as exc:
        error = exc
    finally:
        stop.set()
        if heartbeats is not None:
            heartbeats.join()
    if beat_errors:
        raise wire.ConnectionClosed(f"heartbeat failed: {beat_errors[0]!r}")
    if error is not None:
        with lock:
            wire.send_message(
                sock,
                {
                    "type": "error",
                    "worker": worker_id,
                    "batch": batch,
                    "chunk_id": chunk_id,
                    "message": repr(error),
                },
            )
            wire.recv_message(sock)
        return
    if net_mode == "stall" and plan is not None:
        clock.sleep(plan.stall_seconds)
    report = {
        "type": "result",
        "worker": worker_id,
        "batch": batch,
        "chunk_id": chunk_id,
        "results": wire.encode_payload(results),
    }
    if net_mode == "corrupt_frame":
        # Damage the frame in transit: the coordinator's checksum rejects
        # it, charges our lease and drops this connection.
        with lock:
            sock.sendall(wire.corrupt_frame(wire.encode_message(report)))
        raise _InjectedDisconnect(
            f"injected corrupt frame for chunk {chunk_id} (attempt {attempt})"
        )
    with lock:
        wire.send_message(sock, report)
        wire.recv_message(sock)  # accepted / stale / rejected
        if net_mode == "duplicate":
            # Send the identical result again: the coordinator must discard
            # it as stale (the lease is gone) without corrupting any slot.
            wire.send_message(sock, report)
            wire.recv_message(sock)


# ---------------------------------------------------------------------------
# CLI: python -m repro.runner.distributed worker HOST:PORT
# ---------------------------------------------------------------------------
def _parse_address(text: str) -> tuple[str, int]:
    host, sep, port_text = text.rpartition(":")
    if not sep or not host or not port_text:
        raise argparse.ArgumentTypeError(
            f"address {text!r} is not HOST:PORT (e.g. 127.0.0.1:7000)"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"address {text!r}: port {port_text!r} is not an integer"
        ) from None
    if not 1 <= port <= 65535:
        raise argparse.ArgumentTypeError(
            f"address {text!r}: port must lie in [1, 65535]"
        )
    return host, port


def _supervise(address: tuple[str, int], args: argparse.Namespace) -> int:
    """Respawn worker children after abnormal exits (``--restarts N``).

    An injected (or real) crash takes the whole worker process down with
    it; the supervisor is what turns that into a bounded outage instead of
    a permanently lost worker.  SIGTERM/SIGINT are forwarded to the child
    so killing the supervisor kills the worker too.
    """
    clock = MonotonicClock()
    retry = RetryPolicy()
    command = [
        sys.executable,
        "-m",
        "repro.runner.distributed",
        "worker",
        f"{address[0]}:{address[1]}",
        "--io-timeout",
        str(args.io_timeout),
    ]
    child: Optional[subprocess.Popen[bytes]] = None

    def forward(signum: int, _frame: Optional[FrameType]) -> None:
        raise SystemExit(128 + signum)

    signal.signal(signal.SIGTERM, forward)
    signal.signal(signal.SIGINT, forward)
    restarts = 0
    try:
        while True:
            child = subprocess.Popen(command)
            returncode = child.wait()
            child = None
            if returncode == 0:
                return 0
            restarts += 1
            if restarts > args.restarts:
                return returncode
            clock.sleep(
                retry.backoff_seconds(
                    min(restarts, 8), key=f"respawn:{address[0]}:{address[1]}"
                )
            )
    finally:
        if child is not None and child.poll() is None:
            child.terminate()
            child.wait()


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner.distributed",
        description=(
            "Distributed evaluation service processes.  The coordinator is "
            "embedded in QueueBackend (backend spec 'queue:host:port'); this "
            "entry point runs the worker side."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)
    worker = commands.add_parser(
        "worker", help="run one evaluation worker against a coordinator"
    )
    worker.add_argument(
        "address",
        type=_parse_address,
        help="coordinator HOST:PORT (as printed by the queue backend)",
    )
    worker.add_argument(
        "--worker-id",
        default=None,
        help="stable worker identity (default: w<pid>)",
    )
    worker.add_argument(
        "--io-timeout",
        type=float,
        default=DEFAULT_IO_TIMEOUT,
        help="socket timeout in seconds for every blocking operation",
    )
    worker.add_argument(
        "--restarts",
        type=int,
        default=0,
        help=(
            "supervisor mode: respawn the worker process up to N times "
            "after abnormal exits (a crashed job takes the process with it)"
        ),
    )
    args = parser.parse_args(argv)
    if args.io_timeout <= 0:
        parser.error("--io-timeout must be positive")
    if args.restarts < 0:
        parser.error("--restarts must be non-negative")
    if args.restarts > 0:
        return _supervise(args.address, args)
    try:
        run_worker(
            args.address, worker_id=args.worker_id, io_timeout=args.io_timeout
        )
    except KeyboardInterrupt:
        return 130
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
