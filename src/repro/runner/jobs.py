"""Picklable descriptions of one specimen simulation (the unit of fan-out).

The Remy design loop and the figure harnesses both reduce to the same shape
of work: many *independent* packet-level simulations whose inputs are fixed
up front (network spec, protocols, workloads, seed) and whose outputs are
per-flow statistics.  A :class:`SimJob` captures one such simulation in a
picklable form so an :class:`~repro.runner.backends.ExecutionBackend` can run
it in this process or ship it to a worker process; a :class:`SimJobResult`
carries the outcome back.

Training-mode RemyCC jobs additionally return per-whisker usage deltas
(:class:`WhiskerStatsDelta`, one per leaf in the tree's deterministic
depth-first order — the same ordering contract as
:mod:`repro.core.serialization`) so the master process can merge statistics
into its own tree instead of relying on in-place mutation, which process
isolation would silently discard.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Union

from repro.netsim.kernel import KERNEL_NAMES
from repro.netsim.sender import Workload
from repro.netsim.simulator import Simulation, SimulationResult, TopologySpec

if TYPE_CHECKING:
    # Annotation-only imports.  repro.core's package __init__ imports the
    # evaluator, which imports this package, so a runtime import of
    # repro.core here would be circular (likewise for protocols).
    from repro.core.whisker_tree import WhiskerTree
    from repro.protocols.base import CongestionControl
    from repro.scenarios.spec import ScenarioSpec

ProtocolFactory = Callable[[], "CongestionControl"]


def mix_seed(*components: object) -> int:
    """Derive a 32-bit simulation seed from an arbitrary component tuple.

    The components are rendered to a string and fed through
    ``random.Random``'s string seeding (which hashes via SHA-512), so any two
    distinct component tuples get statistically independent seeds.  This
    replaces arithmetic derivations like ``seed * 7919 + index``, where
    ``(seed=1, index=0)`` and ``(seed=0, index=7919)`` share a packet
    schedule.
    """
    key = ":".join(repr(component) for component in components)
    return random.Random(key).getrandbits(32)


@dataclass(frozen=True)
class SimJob:
    """One specimen simulation, described picklably.

    Exactly one protocol source must be set:

    * ``tree`` — a RemyCC rule table executed at every sender;
    * ``protocol_factory`` — a picklable zero-argument congestion-control
      constructor (e.g. a protocol class); or
    * ``scenario`` — a :class:`~repro.scenarios.spec.ScenarioSpec` (or the
      name of a registered one), whose (possibly mixed) protocol set is
      materialized in whichever process runs the job.  A spec object is
      self-contained; a *name* is resolved against the registry of the
      executing process, so runtime-registered cells should ship the spec
      itself (:meth:`from_scenario` does, and
      :class:`~repro.runner.backends.ProcessPoolBackend` resolves names at
      submission time for the same reason).

    ``workloads`` holds one on/off workload object per flow; an empty tuple
    means all-always-on sources (the
    :class:`~repro.netsim.simulator.Simulation` default).

    ``kernel`` selects the simulation engine (``"auto"``, ``"generic"`` or
    ``"flat"``; see :mod:`repro.netsim.kernel`).  It is kept as a plain
    string — not a resolved kernel object — so the job stays picklable and
    the choice survives the trip through process pools and the distributed
    queue; the executing process resolves it when it builds the
    :class:`~repro.netsim.simulator.Simulation`.  Non-behavioral: every
    kernel reproduces the same results bit-identically.
    """

    job_id: int
    spec: TopologySpec
    duration: float
    seed: int
    workloads: tuple[Workload, ...] = ()
    tree: Optional["WhiskerTree"] = None
    training: bool = False
    protocol_factory: Optional[ProtocolFactory] = None
    scenario: Optional[Union[str, "ScenarioSpec"]] = None
    max_events: Optional[int] = None
    trace_flows: tuple[int, ...] = ()
    kernel: str = "auto"

    def __post_init__(self) -> None:
        sources = sum(
            source is not None
            for source in (self.tree, self.protocol_factory, self.scenario)
        )
        if sources != 1:
            raise ValueError(
                "exactly one of tree, protocol_factory or scenario must be set"
            )
        if self.workloads and len(self.workloads) != self.spec.n_flows:
            raise ValueError(
                f"got {len(self.workloads)} workloads for {self.spec.n_flows} flows"
            )
        if self.kernel not in KERNEL_NAMES:
            raise ValueError(
                f"job {self.job_id}: unknown kernel {self.kernel!r}; "
                f"expected one of {', '.join(KERNEL_NAMES)} (jobs carry the "
                "kernel as a plain string so it pickles across worker "
                "boundaries)"
            )

    @classmethod
    def from_scenario(
        cls,
        name: str,
        job_id: int = 0,
        duration: Optional[float] = None,
        seed: Optional[int] = None,
        max_events: Optional[int] = None,
        trace_flows: tuple[int, ...] = (),
        kernel: Optional[str] = None,
    ) -> "SimJob":
        """A job replaying the named registered scenario cell.

        The cell's canonical duration/seed/kernel apply unless overridden.
        The resolved spec itself — network, workloads, protocol set — is
        captured at submission time, so the job is fully self-contained:
        cells registered at runtime (not just built-ins) survive the trip
        to a worker process, and mixed protocol sets rebuild from the
        embedded spec there.
        """
        from repro.scenarios import get_scenario

        cell = get_scenario(name)
        workloads = cell.make_workloads()
        return cls(
            job_id=job_id,
            spec=cell.network_spec(),
            duration=cell.duration if duration is None else duration,
            seed=cell.seed if seed is None else seed,
            workloads=tuple(workloads) if workloads is not None else (),
            scenario=cell,
            max_events=max_events,
            trace_flows=trace_flows,
            kernel=cell.kernel if kernel is None else kernel,
        )

    def build_protocols(self) -> list["CongestionControl"]:
        """Instantiate one congestion-control module per flow."""
        # Imported here rather than at module scope: protocols import
        # repro.core, so a top-level import would be circular.
        from repro.protocols.remycc import RemyCCProtocol

        if self.tree is not None:
            return [
                RemyCCProtocol(self.tree, training=self.training)
                for _ in range(self.spec.n_flows)
            ]
        if self.scenario is not None:
            cell = self.scenario
            if isinstance(cell, str):
                from repro.scenarios import get_scenario

                cell = get_scenario(cell)
            return cell.make_protocols()
        assert self.protocol_factory is not None
        return [self.protocol_factory() for _ in range(self.spec.n_flows)]


@dataclass
class WhiskerStatsDelta:
    """Usage accumulated by one whisker during one job (worker-side)."""

    use_count: int
    samples: list[tuple[float, float, float]] = field(default_factory=list)


@dataclass
class SimJobResult:
    """Outcome of one :class:`SimJob`, picklable for the return trip.

    ``whisker_stats`` is populated only for training-mode RemyCC jobs run
    under a memory-isolated backend: one delta per tree leaf, in the tree's
    depth-first leaf order.
    """

    job_id: int
    result: SimulationResult
    whisker_stats: Optional[list[WhiskerStatsDelta]] = None


def collect_whisker_stats(tree: "WhiskerTree") -> list[WhiskerStatsDelta]:
    """Snapshot per-whisker usage in depth-first leaf order."""
    return [
        WhiskerStatsDelta(use_count=w.use_count, samples=list(w._samples))
        for w in tree.whiskers()
    ]


def merge_whisker_stats(
    tree: "WhiskerTree", batches: list[list[WhiskerStatsDelta]]
) -> None:
    """Fold worker-side usage deltas into the master tree.

    ``batches`` must be in job-submission order so the merge is
    deterministic.  Use counts add exactly; sample reservoirs are refilled
    with the same append-then-ring policy as :meth:`Whisker.use`, keyed off
    the master's running use count.  (When a single whisker fires more than
    ``SAMPLE_RESERVOIR`` times inside one job, the reconstructed reservoir
    can retain a slightly different sample subset than a fully serial run —
    use counts, and therefore rule selection, are unaffected.)
    """
    from repro.core.whisker import SAMPLE_RESERVOIR

    whiskers = tree.whiskers()
    for batch in batches:
        if len(batch) != len(whiskers):
            raise ValueError(
                f"stats delta has {len(batch)} entries for {len(whiskers)} rules"
            )
        for whisker, delta in zip(whiskers, batch):
            start = whisker.use_count
            whisker.use_count += delta.use_count
            for offset, sample in enumerate(delta.samples):
                if len(whisker._samples) < SAMPLE_RESERVOIR:
                    whisker._samples.append(sample)
                else:
                    # Whisker.use increments the count before writing, so the
                    # k-th replayed sample (1-based) lands at start + k.
                    whisker._samples[(start + offset + 1) % SAMPLE_RESERVOIR] = sample


def chunk_result_mismatch(
    jobs: list[SimJob], results: list[SimJobResult]
) -> Optional[str]:
    """Describe how a worker's chunk results fail to match the submitted jobs.

    Returns ``None`` when the results line up (same count, same job ids in
    the same order), otherwise a human-readable description of the mismatch.
    Used by the resilient backend to reject corrupted or misrouted chunk
    results before they can land in the wrong result slots.
    """
    expected = [job.job_id for job in jobs]
    got = [result.job_id for result in results]
    if expected == got:
        return None
    return f"worker returned results for job ids {got}, expected {expected}"


def run_sim_job(job: SimJob, collect_stats: bool = False) -> SimJobResult:
    """Execute one job in the current process.

    ``collect_stats=True`` snapshots the tree's per-whisker usage after the
    run (for backends that execute on an isolated copy of the tree and must
    send statistics back explicitly); in-process backends leave it ``False``
    because training runs already mutate the caller's tree directly.

    A collected snapshot must be a pure per-job delta, but the tree object
    may be shared with other jobs in the same worker (a chunk of jobs is
    unpickled as one message, so jobs of one chunk reference one tree
    copy), so the statistics are zeroed before the run rather than
    trusting the tree to arrive clean.
    """
    if collect_stats and job.tree is not None and job.training:
        job.tree.reset_statistics()
    simulation = Simulation(
        job.spec,
        job.build_protocols(),
        list(job.workloads) if job.workloads else None,
        duration=job.duration,
        seed=job.seed,
        trace_flows=job.trace_flows,
        max_events=job.max_events,
        kernel=job.kernel,
    )
    result = simulation.run()
    whisker_stats = None
    if collect_stats and job.tree is not None and job.training:
        whisker_stats = collect_whisker_stats(job.tree)
    return SimJobResult(job_id=job.job_id, result=result, whisker_stats=whisker_stats)
