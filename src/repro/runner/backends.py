"""Execution backends: how a batch of simulation jobs actually runs.

The paper parallelized the design phase's specimen evaluations across many
cores (§4.3); this module provides that execution layer as a pluggable
interface so the evaluator, the optimizer's candidate fan-out and the figure
harnesses can share it:

* :class:`SerialBackend` (the default everywhere) runs each job in-process on
  the caller's own objects — training runs mutate the caller's tree in place,
  exactly like the pre-backend code path, so results stay bit-identical.
* :class:`ProcessPoolBackend` ships picklable jobs to a pool of worker
  processes.  Workers operate on isolated copies of the rule table, so
  training statistics come back as explicit per-whisker deltas that the
  caller merges (see :func:`repro.runner.jobs.merge_whisker_stats`).

Backends preserve submission order: ``run_batch(jobs)[i]`` is always the
result of ``jobs[i]``.
"""

from __future__ import annotations

import os
import pickle
from abc import ABC, abstractmethod
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import replace
from typing import Optional, Sequence

from repro.runner.jobs import SimJob, SimJobResult, run_sim_job


def _execute_job_chunk(jobs: Sequence[SimJob], attempt: int = 0) -> list[SimJobResult]:
    """Worker entry point for one chunk: many jobs, one IPC round trip.

    Module-level so it pickles by reference.  The chunk is pickled as a
    single object, so jobs sharing a rule table serialize that table once
    per chunk instead of once per job, and the results travel back as one
    message.

    ``attempt`` is the number of times this chunk has already been tried
    (:class:`~repro.runner.resilience.ResilientPoolBackend` increments it on
    resubmission); it keys the deterministic fault-injection harness, which
    fires only inside armed worker processes (see
    :func:`repro.runner.faults.worker_fault_plan`).
    """
    from repro.runner.faults import worker_fault_plan

    plan = worker_fault_plan()
    results = []
    for job in jobs:
        if plan is not None:
            plan.apply_before_run(job.job_id, attempt)
        result = run_sim_job(job, collect_stats=job.training and job.tree is not None)
        if plan is not None:
            result = plan.apply_after_run(job.job_id, attempt, result)
        results.append(result)
    return results


def available_workers() -> int:
    """CPUs usable by this process (respects affinity masks where available)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def check_factories_picklable(jobs: Sequence[SimJob]) -> None:
    """Fail fast, with a clear error, on factories that cannot ship.

    Without this, a closure ``protocol_factory`` (e.g. a lambda closing
    over a rule table) dies deep inside the executor with a bare pickle
    traceback — after workers have already been spawned.  Each distinct
    factory is probed once per batch.
    """
    probed: set[int] = set()
    for job in jobs:
        factory = job.protocol_factory
        if factory is None or id(factory) in probed:
            continue
        probed.add(id(factory))
        try:
            pickle.dumps(factory)
        except Exception as exc:
            raise ValueError(
                f"protocol_factory {factory!r} (job {job.job_id}) is not "
                "picklable, so it cannot cross a process boundary: "
                "closures and lambdas do not pickle.  Use a module-level "
                "callable (e.g. the protocol class), describe the scheme "
                "by its rule table (tree=...) or a registered scenario "
                "(scenario=...), or run on SerialBackend."
            ) from exc


def prepare_jobs(jobs: Sequence[SimJob]) -> list[SimJob]:
    """Make a batch safe to ship across a process boundary.

    Shared by every memory-isolated backend (process pool and distributed
    queue alike): factories are probed for picklability, scenario *names*
    are resolved against the submitting process's registry (a worker only
    has the built-in cells), and each distinct rule table is replaced by a
    statistics-free copy via the JSON serialization round trip, so workers
    start from zeroed counters and their returned deltas are pure.
    """
    # Imported here rather than at module scope: repro.core's package
    # __init__ imports the evaluator, which imports this package.
    from repro.core.serialization import whisker_tree_from_dict, whisker_tree_to_dict

    check_factories_picklable(jobs)
    clean_trees: dict[int, object] = {}
    prepared = []
    for job in jobs:
        if isinstance(job.scenario, str):
            # Resolve names against the *submitting* process's registry:
            # a worker only has the built-in cells, so a runtime-registered
            # name would die there with a bare KeyError.  (Unknown names
            # also fail fast here, before any worker is spawned.)
            from repro.scenarios import get_scenario

            job = replace(job, scenario=get_scenario(job.scenario))
        if job.tree is not None:
            key = id(job.tree)
            if key not in clean_trees:
                clean_trees[key] = whisker_tree_from_dict(
                    whisker_tree_to_dict(job.tree)
                )
            job = replace(job, tree=clean_trees[key])
        prepared.append(job)
    return prepared


class ChunkExecutionError(RuntimeError):
    """A worker chunk failed under :class:`ProcessPoolBackend`.

    Carries *which* jobs were in the failing chunk (``job_ids``, in
    submission order) and the chunk's batch offset, with the worker's
    exception chained as ``__cause__``.  The plain pool backend does not
    retry — use :class:`~repro.runner.resilience.ResilientPoolBackend` for
    that — but it does cancel and drain the rest of the batch so no futures
    leak, and this error tells the caller exactly what was lost.
    """

    def __init__(self, chunk_start: int, job_ids: Sequence[int], message: str):
        super().__init__(message)
        self.chunk_start = chunk_start
        self.job_ids = list(job_ids)


class ExecutionBackend(ABC):
    """Runs batches of independent :class:`SimJob`\\ s."""

    #: Whether jobs execute on the caller's own objects.  When ``True``,
    #: training runs mutate the submitted tree directly and no statistics
    #: merge is needed; when ``False``, callers must fold the returned
    #: ``whisker_stats`` deltas into their tree.
    shares_memory: bool = True

    @abstractmethod
    def run_batch(self, jobs: Sequence[SimJob]) -> list[SimJobResult]:
        """Execute every job and return results in submission order."""

    def close(self) -> None:
        """Release any resources (worker processes); idempotent."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """In-process, sequential execution — the bit-identical default."""

    shares_memory = True

    def run_batch(self, jobs: Sequence[SimJob]) -> list[SimJobResult]:
        return [run_sim_job(job) for job in jobs]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SerialBackend()"


class ProcessPoolBackend(ExecutionBackend):
    """Fan jobs out over a pool of worker processes, a chunk at a time.

    Jobs must be picklable: rule-table jobs always are; ``protocol_factory``
    jobs require a module-level factory (a protocol class qualifies — a
    closure does not).  Before shipping, each distinct tree in the batch is
    replaced by a statistics-free copy (via the JSON serialization round
    trip) so workers start from zeroed counters and their returned deltas
    are pure, and so stale sample reservoirs never cross the process
    boundary.

    Submission is *chunked*: the batch is cut into runs of ``chunk_jobs``
    consecutive jobs and each chunk is one worker task — one pickle of the
    jobs (shared rule tables serialize once per chunk), one simulation loop
    in the worker, one result message back.  That amortizes IPC for the
    sub-100 ms jobs the flattened simulator produces, where per-job dispatch
    overhead would otherwise eat the parallel speedup.  Results stream back
    per chunk as workers finish and are reassembled into submission order.
    ``chunk_jobs=None`` (the default) targets four chunks per worker for
    load balance; pass an explicit value to trade balance against IPC
    (bigger chunks = fewer, larger messages).

    The pool is created lazily on first use and reused across batches;
    call :meth:`close` (or use the backend as a context manager) to reap the
    workers.
    """

    shares_memory = False

    def __init__(self, max_workers: Optional[int] = None, chunk_jobs: Optional[int] = None) -> None:
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        if chunk_jobs is not None and chunk_jobs <= 0:
            raise ValueError("chunk_jobs must be positive")
        self.max_workers = max_workers if max_workers is not None else available_workers()
        self.chunk_jobs = chunk_jobs
        self._executor: Optional[ProcessPoolExecutor] = None

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            # The initializer arms fault injection (a no-op unless a
            # FaultPlan is installed) and, more importantly, marks the
            # process as a *worker*: injected faults must never fire in the
            # submitting process or in serial fallback paths.
            from repro.runner.faults import mark_worker_process

            self._executor = ProcessPoolExecutor(
                max_workers=self.max_workers, initializer=mark_worker_process
            )
        return self._executor

    def _chunk_size(self, n_jobs: int) -> int:
        if self.chunk_jobs is not None:
            return self.chunk_jobs
        # Four chunks per worker keeps the pool balanced when job durations
        # vary while still amortizing IPC over several jobs per task.
        return max(1, -(-n_jobs // (self.max_workers * 4)))

    def _check_factories_picklable(self, jobs: Sequence[SimJob]) -> None:
        check_factories_picklable(jobs)

    def _prepare(self, jobs: Sequence[SimJob]) -> list[SimJob]:
        return prepare_jobs(jobs)

    def run_batch(self, jobs: Sequence[SimJob]) -> list[SimJobResult]:
        jobs = self._prepare(jobs)
        if not jobs:
            return []
        executor = self._ensure_executor()
        chunk = self._chunk_size(len(jobs))
        futures = {
            executor.submit(_execute_job_chunk, jobs[start : start + chunk]): start
            for start in range(0, len(jobs), chunk)
        }
        # Stream results back chunk by chunk as workers finish, reassembling
        # submission order (run_batch's ordering contract) by chunk offset.
        results: list[Optional[SimJobResult]] = [None] * len(jobs)
        pending = set(futures)
        try:
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    start = futures[future]
                    try:
                        chunk_results = future.result()
                    except Exception as exc:
                        failed = jobs[start : start + chunk]
                        raise ChunkExecutionError(
                            chunk_start=start,
                            job_ids=[job.job_id for job in failed],
                            message=(
                                f"chunk at batch offset {start} (jobs "
                                f"{[job.job_id for job in failed]}) failed in "
                                f"the worker: {exc!r}.  The rest of the batch "
                                "was cancelled; completed results are "
                                "discarded (jobs are pure, resubmitting is "
                                "safe).  For automatic retry/poison-job "
                                "isolation use ResilientPoolBackend "
                                "(backend spec 'process:N:C:retries')."
                            ),
                        ) from exc
                    for offset, result in enumerate(chunk_results):
                        results[start + offset] = result
        except BaseException:
            # Don't leak the rest of the batch: cancel whatever has not
            # started and drain what has, so no future is still running when
            # the error surfaces (the pool stays reusable unless the worker
            # itself died).
            for future in pending:
                future.cancel()
            if pending:
                wait(pending)
            raise
        return results  # type: ignore[return-value]  # every slot filled above

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProcessPoolBackend(max_workers={self.max_workers})"


def _run_thread_chunk(jobs: Sequence[SimJob]) -> list[SimJobResult]:
    """Thread-pool chunk runner: plain in-process execution, no fault plan.

    Fault injection is a *worker-process* concept (armed by the process-pool
    initializer); threads execute in the submitting process, where injected
    faults must never fire.
    """
    return [run_sim_job(job) for job in jobs]


class ThreadBackend(ExecutionBackend):
    """Fan jobs out over a pool of threads in the submitting process.

    Jobs execute on the caller's own objects — nothing is pickled, so
    closure ``protocol_factory``\\ s and runtime-registered scenario names
    work unchanged.  Every job is an independent, fully self-contained
    simulation (its own scheduler, rngs and flow state seeded from the job
    alone), so thread scheduling cannot perturb results: per-job output is
    bit-identical to :class:`SerialBackend`, and ``run_batch`` reassembles
    submission order like every backend.

    Training-mode rule-table jobs are the one exception to independence —
    they mutate the shared tree's usage counters in place — so a batch
    containing any such job degrades to in-order serial execution rather
    than racing unsynchronized read-modify-write updates across threads.

    This backend trades the process pool's per-chunk pickling/IPC for the
    interpreter lock: it shines when jobs release the GIL or are too short
    to amortize IPC, and it is the cheap way to overlap many small jobs
    without worker processes.  ``chunk_jobs`` bounds per-task submission
    overhead exactly as in :class:`ProcessPoolBackend` (default: four
    chunks per worker).
    """

    shares_memory = True

    def __init__(
        self, max_workers: Optional[int] = None, chunk_jobs: Optional[int] = None
    ) -> None:
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        if chunk_jobs is not None and chunk_jobs <= 0:
            raise ValueError("chunk_jobs must be positive")
        self.max_workers = max_workers if max_workers is not None else available_workers()
        self.chunk_jobs = chunk_jobs
        self._executor: Optional[ThreadPoolExecutor] = None

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(max_workers=self.max_workers)
        return self._executor

    def _chunk_size(self, n_jobs: int) -> int:
        if self.chunk_jobs is not None:
            return self.chunk_jobs
        return max(1, -(-n_jobs // (self.max_workers * 4)))

    def run_batch(self, jobs: Sequence[SimJob]) -> list[SimJobResult]:
        if not jobs:
            return []
        if any(job.tree is not None and job.training for job in jobs):
            # Training jobs mutate the caller's tree in place; running them
            # concurrently would race those updates, so preserve the serial
            # (bit-identical) contract instead.
            return [run_sim_job(job) for job in jobs]
        executor = self._ensure_executor()
        chunk = self._chunk_size(len(jobs))
        futures = {
            executor.submit(_run_thread_chunk, jobs[start : start + chunk]): start
            for start in range(0, len(jobs), chunk)
        }
        results: list[Optional[SimJobResult]] = [None] * len(jobs)
        pending = set(futures)
        try:
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    start = futures[future]
                    for offset, result in enumerate(future.result()):
                        results[start + offset] = result
        except BaseException:
            # Cancel whatever has not started and drain the rest so no
            # chunk is still running when the error surfaces.
            for future in pending:
                future.cancel()
            if pending:
                wait(pending)
            raise
        return results  # type: ignore[return-value]  # every slot filled above

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ThreadBackend(max_workers={self.max_workers})"


#: Grammar reminder appended to every spec-format error.
_SPEC_GRAMMAR = (
    "expected 'serial', 'process[:workers[:chunk[:retries]]]' (each field a "
    "positive integer or empty for the default — e.g. 'process', "
    "'process:8', 'process:8:4', or 'process:::3'; a retries field selects "
    "ResilientPoolBackend with per-chunk retry and poison-job isolation), "
    "'thread[:workers[:chunk]]' (ThreadBackend: a thread pool in the "
    "submitting process — same workers/chunk fields as process, no retries "
    "field because nothing crosses a process boundary — e.g. 'thread', "
    "'thread:8', or 'thread::4'), or 'queue:host:port[:wait]' (QueueBackend: "
    "bind the distributed coordinator on host:port — empty host means "
    "127.0.0.1, port 0 picks an ephemeral port — and degrade to in-process "
    "execution if no worker registers within 'wait' seconds)."
)


def _spec_field(spec: str, field: str, value: str) -> Optional[int]:
    """Parse one ``:``-separated spec field: empty → default, else int > 0."""
    if not value:
        return None
    try:
        parsed = int(value)
    except ValueError:
        raise ValueError(
            f"invalid backend spec {spec!r}: {field} field {value!r} is not "
            f"an integer; {_SPEC_GRAMMAR}"
        ) from None
    if parsed <= 0:
        raise ValueError(
            f"invalid backend spec {spec!r}: {field} must be positive, "
            f"got {parsed}; {_SPEC_GRAMMAR}"
        )
    return parsed


def backend_from_spec(spec: str) -> ExecutionBackend:
    """Build a backend from a CLI-style spec string.

    ``"serial"`` → :class:`SerialBackend`; ``"process"`` →
    :class:`ProcessPoolBackend` with one worker per available CPU;
    ``"process:N"`` → a pool of exactly N workers; ``"process:N:C"`` →
    additionally submit C jobs per worker task (chunk size); and
    ``"process:N:C:R"`` → a
    :class:`~repro.runner.resilience.ResilientPoolBackend` allowing up to R
    attempts per chunk (with the default backoff/timeout policy).  Empty
    fields keep their defaults, so ``"process::8"`` sets only the chunk size
    and ``"process:::3"`` only the retry budget.

    ``"thread[:workers[:chunk]]"`` → a :class:`ThreadBackend` with the same
    workers/chunk semantics (no retries field: threads never lose work to a
    dead worker process, and fault injection is process-pool-only).

    ``"queue:host:port[:wait]"`` → a
    :class:`~repro.runner.distributed.QueueBackend`: bind the distributed
    coordinator on ``host:port`` (empty host → ``127.0.0.1``; port ``0`` →
    an ephemeral port, readable from ``backend.port``) and lease job chunks
    to remote workers started with ``python -m repro.runner.distributed
    worker host:port``.  The optional ``wait`` (float seconds) bounds how
    long a batch tolerates having *no* live workers before degrading to
    in-process serial execution.

    Malformed specs raise a :class:`ValueError` that restates the grammar
    instead of a bare ``int()`` traceback.
    """
    name, _, arg = spec.partition(":")
    if name == "serial":
        if arg:
            raise ValueError(
                f"invalid backend spec {spec!r}: serial takes no argument; "
                f"{_SPEC_GRAMMAR}"
            )
        return SerialBackend()
    if name == "process":
        fields = arg.split(":") if arg else []
        if len(fields) > 3:
            raise ValueError(
                f"invalid backend spec {spec!r}: too many fields "
                f"({len(fields)}); {_SPEC_GRAMMAR}"
            )
        fields += [""] * (3 - len(fields))
        workers = _spec_field(spec, "workers", fields[0])
        chunk = _spec_field(spec, "chunk", fields[1])
        retries = _spec_field(spec, "retries", fields[2])
        if retries is not None:
            # Imported here: resilience subclasses ProcessPoolBackend, so a
            # module-level import would be circular.
            from repro.runner.resilience import ResilientPoolBackend, RetryPolicy

            return ResilientPoolBackend(
                max_workers=workers,
                chunk_jobs=chunk,
                retry=RetryPolicy(max_attempts=retries),
            )
        return ProcessPoolBackend(max_workers=workers, chunk_jobs=chunk)
    if name == "thread":
        fields = arg.split(":") if arg else []
        if len(fields) > 2:
            raise ValueError(
                f"invalid backend spec {spec!r}: too many fields "
                f"({len(fields)}) — thread takes at most workers and chunk "
                f"('thread[:workers[:chunk]]'); {_SPEC_GRAMMAR}"
            )
        fields += [""] * (2 - len(fields))
        workers = _spec_field(spec, "workers", fields[0])
        chunk = _spec_field(spec, "chunk", fields[1])
        return ThreadBackend(max_workers=workers, chunk_jobs=chunk)
    if name == "queue":
        fields = arg.split(":") if arg else []
        if len(fields) < 2:
            raise ValueError(
                f"invalid backend spec {spec!r}: queue needs both a host and "
                f"a port ('queue:host:port[:wait]', e.g. "
                f"'queue:127.0.0.1:7000' or 'queue::0'); {_SPEC_GRAMMAR}"
            )
        if len(fields) > 3:
            raise ValueError(
                f"invalid backend spec {spec!r}: too many fields "
                f"({len(fields)}); {_SPEC_GRAMMAR}"
            )
        host = fields[0] or "127.0.0.1"
        try:
            port = int(fields[1])
        except ValueError:
            raise ValueError(
                f"invalid backend spec {spec!r}: port field {fields[1]!r} is "
                f"not an integer; {_SPEC_GRAMMAR}"
            ) from None
        if not 0 <= port <= 65535:
            raise ValueError(
                f"invalid backend spec {spec!r}: port must lie in [0, 65535] "
                f"(0 = ephemeral), got {port}; {_SPEC_GRAMMAR}"
            )
        wait: Optional[float] = None
        if len(fields) == 3 and fields[2]:
            try:
                wait = float(fields[2])
            except ValueError:
                raise ValueError(
                    f"invalid backend spec {spec!r}: wait field {fields[2]!r} "
                    f"is not a number of seconds; {_SPEC_GRAMMAR}"
                ) from None
            if wait <= 0:
                raise ValueError(
                    f"invalid backend spec {spec!r}: wait must be positive "
                    f"seconds, got {wait}; {_SPEC_GRAMMAR}"
                )
        # Imported here: distributed imports this module for prepare_jobs.
        from repro.runner.distributed import QueueBackend

        if wait is not None:
            return QueueBackend(host=host, port=port, worker_wait=wait)
        return QueueBackend(host=host, port=port)
    raise ValueError(
        f"unknown backend spec {spec!r}: family {name!r} is not one of "
        f"'serial', 'process', 'thread', or 'queue'; {_SPEC_GRAMMAR}"
    )
