"""Execution backends: how a batch of simulation jobs actually runs.

The paper parallelized the design phase's specimen evaluations across many
cores (§4.3); this module provides that execution layer as a pluggable
interface so the evaluator, the optimizer's candidate fan-out and the figure
harnesses can share it:

* :class:`SerialBackend` (the default everywhere) runs each job in-process on
  the caller's own objects — training runs mutate the caller's tree in place,
  exactly like the pre-backend code path, so results stay bit-identical.
* :class:`ProcessPoolBackend` ships picklable jobs to a pool of worker
  processes.  Workers operate on isolated copies of the rule table, so
  training statistics come back as explicit per-whisker deltas that the
  caller merges (see :func:`repro.runner.jobs.merge_whisker_stats`).

Backends preserve submission order: ``run_batch(jobs)[i]`` is always the
result of ``jobs[i]``.
"""

from __future__ import annotations

import os
import pickle
from abc import ABC, abstractmethod
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import replace
from typing import Optional, Sequence

from repro.runner.jobs import SimJob, SimJobResult, run_sim_job


def _execute_job_chunk(jobs: Sequence[SimJob]) -> list[SimJobResult]:
    """Worker entry point for one chunk: many jobs, one IPC round trip.

    Module-level so it pickles by reference.  The chunk is pickled as a
    single object, so jobs sharing a rule table serialize that table once
    per chunk instead of once per job, and the results travel back as one
    message.
    """
    return [
        run_sim_job(job, collect_stats=job.training and job.tree is not None)
        for job in jobs
    ]


def available_workers() -> int:
    """CPUs usable by this process (respects affinity masks where available)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


class ExecutionBackend(ABC):
    """Runs batches of independent :class:`SimJob`\\ s."""

    #: Whether jobs execute on the caller's own objects.  When ``True``,
    #: training runs mutate the submitted tree directly and no statistics
    #: merge is needed; when ``False``, callers must fold the returned
    #: ``whisker_stats`` deltas into their tree.
    shares_memory: bool = True

    @abstractmethod
    def run_batch(self, jobs: Sequence[SimJob]) -> list[SimJobResult]:
        """Execute every job and return results in submission order."""

    def close(self) -> None:
        """Release any resources (worker processes); idempotent."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """In-process, sequential execution — the bit-identical default."""

    shares_memory = True

    def run_batch(self, jobs: Sequence[SimJob]) -> list[SimJobResult]:
        return [run_sim_job(job) for job in jobs]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SerialBackend()"


class ProcessPoolBackend(ExecutionBackend):
    """Fan jobs out over a pool of worker processes, a chunk at a time.

    Jobs must be picklable: rule-table jobs always are; ``protocol_factory``
    jobs require a module-level factory (a protocol class qualifies — a
    closure does not).  Before shipping, each distinct tree in the batch is
    replaced by a statistics-free copy (via the JSON serialization round
    trip) so workers start from zeroed counters and their returned deltas
    are pure, and so stale sample reservoirs never cross the process
    boundary.

    Submission is *chunked*: the batch is cut into runs of ``chunk_jobs``
    consecutive jobs and each chunk is one worker task — one pickle of the
    jobs (shared rule tables serialize once per chunk), one simulation loop
    in the worker, one result message back.  That amortizes IPC for the
    sub-100 ms jobs the flattened simulator produces, where per-job dispatch
    overhead would otherwise eat the parallel speedup.  Results stream back
    per chunk as workers finish and are reassembled into submission order.
    ``chunk_jobs=None`` (the default) targets four chunks per worker for
    load balance; pass an explicit value to trade balance against IPC
    (bigger chunks = fewer, larger messages).

    The pool is created lazily on first use and reused across batches;
    call :meth:`close` (or use the backend as a context manager) to reap the
    workers.
    """

    shares_memory = False

    def __init__(self, max_workers: Optional[int] = None, chunk_jobs: Optional[int] = None) -> None:
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        if chunk_jobs is not None and chunk_jobs <= 0:
            raise ValueError("chunk_jobs must be positive")
        self.max_workers = max_workers if max_workers is not None else available_workers()
        self.chunk_jobs = chunk_jobs
        self._executor: Optional[ProcessPoolExecutor] = None

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._executor

    def _chunk_size(self, n_jobs: int) -> int:
        if self.chunk_jobs is not None:
            return self.chunk_jobs
        # Four chunks per worker keeps the pool balanced when job durations
        # vary while still amortizing IPC over several jobs per task.
        return max(1, -(-n_jobs // (self.max_workers * 4)))

    def _check_factories_picklable(self, jobs: Sequence[SimJob]) -> None:
        """Fail fast, with a clear error, on factories that cannot ship.

        Without this, a closure ``protocol_factory`` (e.g. a lambda closing
        over a rule table) dies deep inside the executor with a bare pickle
        traceback — after workers have already been spawned.  Each distinct
        factory is probed once per batch.
        """
        probed: set[int] = set()
        for job in jobs:
            factory = job.protocol_factory
            if factory is None or id(factory) in probed:
                continue
            probed.add(id(factory))
            try:
                pickle.dumps(factory)
            except Exception as exc:
                raise ValueError(
                    f"protocol_factory {factory!r} (job {job.job_id}) is not "
                    "picklable, so it cannot cross a process boundary: "
                    "closures and lambdas do not pickle.  Use a module-level "
                    "callable (e.g. the protocol class), describe the scheme "
                    "by its rule table (tree=...) or a registered scenario "
                    "(scenario=...), or run on SerialBackend."
                ) from exc

    def _prepare(self, jobs: Sequence[SimJob]) -> list[SimJob]:
        # Imported here rather than at module scope: repro.core's package
        # __init__ imports the evaluator, which imports this package.
        from repro.core.serialization import whisker_tree_from_dict, whisker_tree_to_dict

        self._check_factories_picklable(jobs)
        clean_trees: dict[int, object] = {}
        prepared = []
        for job in jobs:
            if isinstance(job.scenario, str):
                # Resolve names against the *submitting* process's registry:
                # a worker only has the built-in cells, so a runtime-registered
                # name would die there with a bare KeyError.  (Unknown names
                # also fail fast here, before any worker is spawned.)
                from repro.scenarios import get_scenario

                job = replace(job, scenario=get_scenario(job.scenario))
            if job.tree is not None:
                key = id(job.tree)
                if key not in clean_trees:
                    clean_trees[key] = whisker_tree_from_dict(
                        whisker_tree_to_dict(job.tree)
                    )
                job = replace(job, tree=clean_trees[key])
            prepared.append(job)
        return prepared

    def run_batch(self, jobs: Sequence[SimJob]) -> list[SimJobResult]:
        jobs = self._prepare(jobs)
        if not jobs:
            return []
        executor = self._ensure_executor()
        chunk = self._chunk_size(len(jobs))
        futures = {
            executor.submit(_execute_job_chunk, jobs[start : start + chunk]): start
            for start in range(0, len(jobs), chunk)
        }
        # Stream results back chunk by chunk as workers finish, reassembling
        # submission order (run_batch's ordering contract) by chunk offset.
        results: list[Optional[SimJobResult]] = [None] * len(jobs)
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                start = futures[future]
                for offset, result in enumerate(future.result()):
                    results[start + offset] = result
        return results  # type: ignore[return-value]  # every slot filled above

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProcessPoolBackend(max_workers={self.max_workers})"


def backend_from_spec(spec: str) -> ExecutionBackend:
    """Build a backend from a CLI-style spec string.

    ``"serial"`` → :class:`SerialBackend`; ``"process"`` →
    :class:`ProcessPoolBackend` with one worker per available CPU;
    ``"process:N"`` → a pool of exactly N workers; ``"process:N:C"`` →
    additionally submit C jobs per worker task (chunk size).
    """
    name, _, arg = spec.partition(":")
    if name == "serial":
        if arg:
            raise ValueError("serial backend takes no argument")
        return SerialBackend()
    if name == "process":
        workers, _, chunk = arg.partition(":")
        return ProcessPoolBackend(
            max_workers=int(workers) if workers else None,
            chunk_jobs=int(chunk) if chunk else None,
        )
    raise ValueError(
        f"unknown backend spec {spec!r}; expected 'serial' or 'process[:N[:C]]'"
    )
