"""Framing for the distributed runner: length-prefixed, checksummed JSON.

One message = an 8-byte header (``!II``: payload length, CRC32) followed by
a UTF-8 JSON object.  Bulk values that are not JSON-able — pickled
:class:`~repro.runner.jobs.SimJob` chunks and their results — travel as
base64 strings inside the JSON envelope, so the control protocol stays
line-printable and debuggable while the payloads keep pickle's exactness
(bit-identical round trips are the whole point of the result cache).

The checksum is what turns a corrupted or truncated frame into a
*detected* failure (:class:`FrameError`) instead of a misparse: the
coordinator drops the offending connection and charges the lease, the
worker reconnects — exercised deterministically by the ``corrupt_frame``
fault mode of :class:`~repro.runner.faults.FaultPlan`.

Blocking helpers (:func:`send_message` / :func:`recv_message`) serve the
worker side; the coordinator's non-blocking event loop feeds received
bytes through a :class:`FrameBuffer` instead.
"""

from __future__ import annotations

import base64
import json
import pickle
import socket
import struct
import zlib
from typing import Any

#: Frame header: payload byte length, then CRC32 of the payload.
HEADER = struct.Struct("!II")

#: Upper bound on one frame.  Generous — a chunk of jobs with a large rule
#: table is a few hundred KB — but finite, so a garbage length field from a
#: corrupted header cannot make a reader allocate gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class FrameError(RuntimeError):
    """A frame failed its checksum, size bound, or JSON envelope parse."""


class ConnectionClosed(ConnectionError):
    """The peer closed the connection at a frame boundary (or mid-frame)."""


def frame(payload: bytes) -> bytes:
    """The on-wire bytes for one payload (header + body)."""
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    return HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def corrupt_frame(payload: bytes) -> bytes:
    """A deliberately damaged frame (checksum cannot match) — fault injection."""
    checksum = zlib.crc32(payload) ^ 0xDEADBEEF
    return HEADER.pack(len(payload), checksum) + payload


class FrameBuffer:
    """Incremental frame reassembly for a non-blocking reader."""

    def __init__(self) -> None:
        self._data = bytearray()

    def feed(self, data: bytes) -> None:
        self._data += data

    def next_frame(self) -> bytes | None:
        """The next complete payload, or ``None`` until more bytes arrive.

        Raises :class:`FrameError` on an oversized length field or a
        checksum mismatch; the caller must drop the connection — after a
        bad frame the stream offset can no longer be trusted.
        """
        if len(self._data) < HEADER.size:
            return None
        length, checksum = HEADER.unpack(self._data[: HEADER.size])
        if length > MAX_FRAME_BYTES:
            raise FrameError(
                f"frame header claims {length} bytes (> {MAX_FRAME_BYTES}); "
                "stream corrupt"
            )
        if len(self._data) < HEADER.size + length:
            return None
        payload = bytes(self._data[HEADER.size : HEADER.size + length])
        del self._data[: HEADER.size + length]
        if zlib.crc32(payload) != checksum:
            raise FrameError("frame checksum mismatch; payload rejected")
        return payload


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    data = bytearray()
    while len(data) < n:
        chunk = sock.recv(n - len(data))
        if not chunk:
            raise ConnectionClosed(
                f"connection closed after {len(data)} of {n} expected bytes"
            )
        data += chunk
    return bytes(data)


def recv_frame(sock: socket.socket) -> bytes:
    """Read one complete frame from a blocking socket (worker side)."""
    length, checksum = HEADER.unpack(_recv_exact(sock, HEADER.size))
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame header claims {length} bytes (> {MAX_FRAME_BYTES}); "
            "stream corrupt"
        )
    payload = _recv_exact(sock, length)
    if zlib.crc32(payload) != checksum:
        raise FrameError("frame checksum mismatch; payload rejected")
    return payload


def encode_message(message: dict[str, Any]) -> bytes:
    """JSON payload bytes for one control message (sorted keys: canonical)."""
    return json.dumps(message, sort_keys=True).encode("utf-8")


def decode_message(payload: bytes) -> dict[str, Any]:
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"frame payload is not a JSON message: {exc}") from exc
    if not isinstance(message, dict) or not isinstance(message.get("type"), str):
        raise FrameError("frame payload is not a message object with a 'type'")
    return message


def send_message(sock: socket.socket, message: dict[str, Any]) -> None:
    sock.sendall(frame(encode_message(message)))


def recv_message(sock: socket.socket) -> dict[str, Any]:
    return decode_message(recv_frame(sock))


def encode_payload(obj: object) -> str:
    """Pickle + base64: bulk object transport inside the JSON envelope."""
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def decode_payload(text: str) -> Any:
    try:
        return pickle.loads(base64.b64decode(text.encode("ascii")))
    except Exception as exc:
        raise FrameError(f"embedded payload failed to unpickle: {exc!r}") from exc


def connect(address: tuple[str, int], timeout: float) -> socket.socket:
    """Open a worker connection with an explicit I/O timeout (SOC001)."""
    sock = socket.create_connection(address, timeout=timeout)
    sock.settimeout(timeout)
    return sock
