"""Content-addressed result cache: hill-climb re-visits are free.

The Remy design loop re-evaluates the *same* whisker tree on the *same*
specimen set constantly — the hill climb revisits its baseline after every
rejected candidate, and a resumed run replays whole epochs.  Every such
re-visit is a pure function of ``(rule table, scenario, seed)``, so this
module memoizes it:

* a **cache key** is derived from the job's content, never its identity:
  the whisker-tree hash (structure + actions, *excluding* per-whisker
  epochs and statistics, which do not affect simulation), a scenario
  fingerprint (network spec, workloads, duration, trace, protocol source —
  hashed from pickled bytes, since workload objects have no stable
  ``repr``), and the simulation seed;
* a :class:`ResultCache` stores the **pickled** :class:`SimJobResult`
  bytes (in memory, optionally mirrored to a directory), so a hit replays
  the exact object graph the simulation produced — bit-identical to
  recomputation, which the cache tests pin byte-for-byte;
* a :class:`CachingBackend` wraps any :class:`ExecutionBackend` with a
  look-aside check per job, so ``Evaluator``/``RemyOptimizer`` get caching
  locally with one constructor argument, and the distributed coordinator
  (:mod:`repro.runner.distributed`) serves the same cache to its workers.

What *legitimately* invalidates a cache: a simulator behavior change (the
golden fingerprints move), a different interpreter major.minor (pickle
bytes differ), or an edit to the key derivation itself.  Nothing else
should — keys deliberately exclude job ids, tree names and epoch counters
so reordered batches and resumed runs keep hitting.

Uncacheable jobs (``None`` key) are passed straight through: closure
protocol factories (no stable qualified name) and — under a
``shares_memory`` backend — training jobs, whose in-place tree mutation a
cache hit would silently skip.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Sequence, Union

from repro.runner.backends import ExecutionBackend
from repro.runner.jobs import SimJob, SimJobResult

if TYPE_CHECKING:
    from repro.core.whisker_tree import WhiskerTree


def whisker_tree_token(tree: "WhiskerTree") -> str:
    """Content hash of a rule table: structure and actions only.

    Per-whisker ``epoch`` counters and the tree ``name`` are stripped
    before hashing — neither affects how the tree maps memories to actions,
    and epochs advance every optimizer round, which would turn every
    hill-climb baseline re-visit into a spurious miss.  Statistics
    (use counts, sample reservoirs) never enter the serialized form at all.
    """
    # Imported here rather than at module scope: repro.core's package
    # __init__ imports the evaluator, which imports this package.
    from repro.core.serialization import whisker_tree_to_dict

    data = whisker_tree_to_dict(tree)
    data.pop("name", None)
    _strip_epochs(data.get("root", {}))
    canonical = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _strip_epochs(node: dict[str, object]) -> None:
    whisker = node.get("whisker")
    if isinstance(whisker, dict):
        whisker.pop("epoch", None)
    children = node.get("children")
    if isinstance(children, list):
        for child in children:
            if isinstance(child, dict):
                _strip_epochs(child)


def _protocol_token(
    job: SimJob, tree_tokens: dict[int, str]
) -> Optional[str]:
    """The protocol-source half of a job's key, or ``None`` if uncacheable."""
    if job.tree is not None:
        key = id(job.tree)
        if key not in tree_tokens:
            tree_tokens[key] = whisker_tree_token(job.tree)
        return f"tree:{tree_tokens[key]}"
    if job.protocol_factory is not None:
        module = getattr(job.protocol_factory, "__module__", None)
        qualname = getattr(job.protocol_factory, "__qualname__", None)
        if not module or not qualname or "<" in qualname:
            # Lambdas/closures have no stable, content-addressable name.
            return None
        return f"factory:{module}.{qualname}"
    scenario = job.scenario
    if isinstance(scenario, str):
        from repro.scenarios import get_scenario

        scenario = get_scenario(scenario)
    assert scenario is not None  # SimJob guarantees one protocol source
    return f"scenario:{scenario.cache_token()}"


def _environment_token(job: SimJob) -> str:
    """Digest of the job's simulated environment (everything but protocol).

    Hashes pickled bytes rather than ``repr``\\ s: workload objects are
    plain classes with default (address-bearing) reprs, while their pickled
    form is a pure function of their configuration.
    """
    payload = (
        job.spec,
        job.duration,
        job.workloads,
        job.max_events,
        job.trace_flows,
        job.training,
    )
    return hashlib.sha256(
        pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    ).hexdigest()


def job_cache_key(
    job: SimJob, tree_tokens: Optional[dict[int, str]] = None
) -> Optional[str]:
    """The content-addressed cache key for one job, or ``None``.

    The key is ``(whisker-tree/protocol hash, scenario fingerprint, seed)``
    joined into one string; it deliberately excludes ``job_id`` (identity,
    not content — a hit rewrites the id).  ``tree_tokens`` memoizes tree
    hashing by object identity across the jobs of one batch, where the
    evaluator submits dozens of jobs sharing each rule table.
    """
    if tree_tokens is None:
        tree_tokens = {}
    protocol = _protocol_token(job, tree_tokens)
    if protocol is None:
        return None
    return f"{protocol}/{_environment_token(job)}/{job.seed}"


def batch_cache_keys(
    jobs: Sequence[SimJob], skip_training: bool = False
) -> list[Optional[str]]:
    """Per-job cache keys for one batch (shared-tree hashing memoized).

    ``skip_training=True`` marks training jobs uncacheable — required when
    the executing backend shares memory with the caller, where a training
    run's purpose is partly its in-place statistics mutation and a cache
    hit would silently skip it.  Memory-isolated backends return statistics
    explicitly in the result, so their training jobs cache fine.
    """
    tree_tokens: dict[int, str] = {}
    keys: list[Optional[str]] = []
    for job in jobs:
        if skip_training and job.training and job.tree is not None:
            keys.append(None)
        else:
            keys.append(job_cache_key(job, tree_tokens))
    return keys


class ResultCache:
    """Maps content keys to pickled :class:`SimJobResult` bytes.

    Always memory-backed; pass ``path`` to also mirror entries into a
    directory (one file per key, written atomically) so a long design run
    survives process restarts with its cache warm.  ``get`` unpickles a
    *fresh* object per call — callers may mutate what they receive (the
    backend rewrites ``job_id``) without corrupting the stored bytes, and
    byte-equality of hits with recomputation stays exact.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self._memory: dict[str, bytes] = {}
        self._dir: Optional[Path] = None
        if path is not None:
            self._dir = Path(path)
            self._dir.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._memory)

    def _file_for(self, key: str) -> Optional[Path]:
        if self._dir is None:
            return None
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return self._dir / f"{digest}.result.pkl"

    def get_bytes(self, key: str) -> Optional[bytes]:
        """The stored pickled result for ``key``, counting hit/miss."""
        payload = self._memory.get(key)
        if payload is None:
            file = self._file_for(key)
            if file is not None and file.exists():
                payload = file.read_bytes()
                self._memory[key] = payload
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def get(self, key: str) -> Optional[SimJobResult]:
        payload = self.get_bytes(key)
        if payload is None:
            return None
        result = pickle.loads(payload)
        assert isinstance(result, SimJobResult)
        return result

    def put_bytes(self, key: str, payload: bytes) -> None:
        self._memory[key] = payload
        file = self._file_for(key)
        if file is None:
            return
        # Atomic publish (temp + rename), so a concurrent reader never sees
        # a torn pickle and a crash never leaves a partial entry behind.
        fd, temp_name = tempfile.mkstemp(dir=str(file.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(temp_name, file)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def put(self, key: str, result: SimJobResult) -> None:
        self.put_bytes(
            key, pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        )

    def stats(self) -> str:
        total = self.hits + self.misses
        rate = self.hits / total if total else 0.0
        return (
            f"{self.hits} hits / {total} lookups ({rate:.0%}), "
            f"{len(self._memory)} entries"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = f"dir={str(self._dir)!r}" if self._dir is not None else "memory"
        return f"ResultCache({where}, {len(self._memory)} entries)"


class CachingBackend(ExecutionBackend):
    """Look-aside cache decorator over any :class:`ExecutionBackend`.

    Hits are served from the cache (with the job's ``job_id`` restored —
    keys are content-addressed, ids are batch positions); misses run on the
    wrapped backend as one sub-batch and are stored on the way out.
    Submission order is preserved, and because stored results are the
    pickled originals, a cached batch is bit-identical to a recomputed one.
    """

    def __init__(self, inner: ExecutionBackend, cache: ResultCache) -> None:
        self.inner = inner
        self.cache = cache
        self.shares_memory = inner.shares_memory

    def run_batch(self, jobs: Sequence[SimJob]) -> list[SimJobResult]:
        keys = batch_cache_keys(jobs, skip_training=self.shares_memory)
        results: list[Optional[SimJobResult]] = [None] * len(jobs)
        miss_slots: list[int] = []
        for slot, (job, key) in enumerate(zip(jobs, keys)):
            cached = self.cache.get(key) if key is not None else None
            if cached is not None:
                cached.job_id = job.job_id
                results[slot] = cached
            else:
                miss_slots.append(slot)
        if miss_slots:
            inner_results = self.inner.run_batch([jobs[slot] for slot in miss_slots])
            for slot, result in zip(miss_slots, inner_results):
                results[slot] = result
                key = keys[slot]
                # A resilient inner backend in on_failure="return" mode can
                # hand back JobFailure entries — never cache those.
                if key is not None and isinstance(result, SimJobResult):
                    self.cache.put(key, result)
        return results  # type: ignore[return-value]  # every slot filled above

    def close(self) -> None:
        self.inner.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CachingBackend({self.inner!r}, {self.cache!r})"
