"""Execution subsystem: batched simulation jobs over pluggable backends.

The design loop (§4.3) and the figure harnesses all boil down to batches of
independent packet-level simulations.  This package describes one simulation
as a picklable :class:`SimJob`, and runs batches through an
:class:`ExecutionBackend` — serially in-process (the bit-identical default)
or across a pool of worker processes.
"""

from repro.runner.backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    available_workers,
    backend_from_spec,
)
from repro.runner.jobs import (
    SimJob,
    SimJobResult,
    WhiskerStatsDelta,
    collect_whisker_stats,
    merge_whisker_stats,
    mix_seed,
    run_sim_job,
)

__all__ = [
    "ExecutionBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "SimJob",
    "SimJobResult",
    "WhiskerStatsDelta",
    "available_workers",
    "backend_from_spec",
    "collect_whisker_stats",
    "merge_whisker_stats",
    "mix_seed",
    "run_sim_job",
]
