"""Execution subsystem: batched simulation jobs over pluggable backends.

The design loop (§4.3) and the figure harnesses all boil down to batches of
independent packet-level simulations.  This package describes one simulation
as a picklable :class:`SimJob`, and runs batches through an
:class:`ExecutionBackend` — serially in-process (the bit-identical default),
across a pool of threads (:class:`ThreadBackend`, backend spec
``thread[:workers[:chunk]]``), across a pool of worker processes, or — for
long fault-prone runs — through
the fault-tolerant :class:`ResilientPoolBackend` (retry with deterministic
backoff, per-chunk timeouts, poison-job bisection, serial degradation; see
:mod:`repro.runner.resilience`).  :mod:`repro.runner.distributed` scales the
same batches over the network: a lease-based work queue (:class:`QueueBackend`,
backend spec ``queue:host:port``) with worker heartbeats, crash recovery and
graceful degradation, while :mod:`repro.runner.cache` adds a content-addressed
result cache so repeat evaluations of the same ``(rule table, scenario,
seed)`` are served without running anything.  :mod:`repro.runner.faults`
provides the seeded chaos harness that makes fault-path tests reproducible.
"""

from repro.runner.backends import (
    ChunkExecutionError,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadBackend,
    available_workers,
    backend_from_spec,
    prepare_jobs,
)
from repro.runner.cache import (
    CachingBackend,
    ResultCache,
    batch_cache_keys,
    job_cache_key,
    whisker_tree_token,
)
from repro.runner.faults import (
    FaultPlan,
    InjectedFault,
    active_fault_plan,
    clear_fault_plan,
    fault_plan_installed,
    install_fault_plan,
    mark_transport_worker,
)
from repro.runner.jobs import (
    SimJob,
    SimJobResult,
    WhiskerStatsDelta,
    chunk_result_mismatch,
    collect_whisker_stats,
    merge_whisker_stats,
    mix_seed,
    run_sim_job,
)
from repro.runner.resilience import (
    CorruptResultError,
    FakeClock,
    JobFailure,
    MonotonicClock,
    PoisonJobError,
    ResilientPoolBackend,
    RetryPolicy,
    record_failure,
)
from repro.runner.wire import ConnectionClosed, FrameError

#: Lazily re-exported from :mod:`repro.runner.distributed` (PEP 562): an
#: eager import here would load the module before ``python -m
#: repro.runner.distributed`` executes it as ``__main__``, making runpy warn
#: about the double life.
_DISTRIBUTED_EXPORTS = ("LeaseQueue", "QueueBackend", "run_worker")


def __getattr__(name: str) -> object:
    if name in _DISTRIBUTED_EXPORTS:
        from repro.runner import distributed

        return getattr(distributed, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CachingBackend",
    "ChunkExecutionError",
    "ConnectionClosed",
    "CorruptResultError",
    "ExecutionBackend",
    "FakeClock",
    "FaultPlan",
    "FrameError",
    "InjectedFault",
    "JobFailure",
    "LeaseQueue",
    "MonotonicClock",
    "PoisonJobError",
    "ProcessPoolBackend",
    "QueueBackend",
    "ResilientPoolBackend",
    "ResultCache",
    "RetryPolicy",
    "SerialBackend",
    "SimJob",
    "SimJobResult",
    "ThreadBackend",
    "WhiskerStatsDelta",
    "active_fault_plan",
    "available_workers",
    "backend_from_spec",
    "batch_cache_keys",
    "chunk_result_mismatch",
    "clear_fault_plan",
    "collect_whisker_stats",
    "fault_plan_installed",
    "install_fault_plan",
    "job_cache_key",
    "mark_transport_worker",
    "merge_whisker_stats",
    "mix_seed",
    "prepare_jobs",
    "record_failure",
    "run_sim_job",
    "run_worker",
    "whisker_tree_token",
]
