"""Execution subsystem: batched simulation jobs over pluggable backends.

The design loop (§4.3) and the figure harnesses all boil down to batches of
independent packet-level simulations.  This package describes one simulation
as a picklable :class:`SimJob`, and runs batches through an
:class:`ExecutionBackend` — serially in-process (the bit-identical default),
across a pool of worker processes, or — for long fault-prone runs — through
the fault-tolerant :class:`ResilientPoolBackend` (retry with deterministic
backoff, per-chunk timeouts, poison-job bisection, serial degradation; see
:mod:`repro.runner.resilience`).  :mod:`repro.runner.faults` provides the
seeded chaos harness that makes fault-path tests reproducible.
"""

from repro.runner.backends import (
    ChunkExecutionError,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    available_workers,
    backend_from_spec,
)
from repro.runner.faults import (
    FaultPlan,
    InjectedFault,
    active_fault_plan,
    clear_fault_plan,
    fault_plan_installed,
    install_fault_plan,
)
from repro.runner.jobs import (
    SimJob,
    SimJobResult,
    WhiskerStatsDelta,
    chunk_result_mismatch,
    collect_whisker_stats,
    merge_whisker_stats,
    mix_seed,
    run_sim_job,
)
from repro.runner.resilience import (
    CorruptResultError,
    FakeClock,
    JobFailure,
    MonotonicClock,
    PoisonJobError,
    ResilientPoolBackend,
    RetryPolicy,
)

__all__ = [
    "ChunkExecutionError",
    "CorruptResultError",
    "ExecutionBackend",
    "FakeClock",
    "FaultPlan",
    "InjectedFault",
    "JobFailure",
    "MonotonicClock",
    "PoisonJobError",
    "ProcessPoolBackend",
    "ResilientPoolBackend",
    "RetryPolicy",
    "SerialBackend",
    "SimJob",
    "SimJobResult",
    "WhiskerStatsDelta",
    "active_fault_plan",
    "available_workers",
    "backend_from_spec",
    "chunk_result_mismatch",
    "clear_fault_plan",
    "collect_whisker_stats",
    "fault_plan_installed",
    "install_fault_plan",
    "merge_whisker_stats",
    "mix_seed",
    "run_sim_job",
]
