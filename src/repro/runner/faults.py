"""Deterministic fault injection for the execution layer (chaos harness).

Real design-phase runs (§4.3 at paper scale) lose workers to crashes, hangs
and OOM kills; the resilience machinery in
:mod:`repro.runner.resilience` exists to survive that.  Testing it against
*actual* random failures would make the chaos suite flaky, so this module
injects failures **deterministically**: a :class:`FaultPlan` is a pure
function of ``(plan seed, job_id, attempt)``, so a given plan produces the
same crash/hang/exception/corruption schedule on every run — chaos tests are
ordinary reproducible tests.

Faults fire only inside pool worker processes (the pool initializer marks
them via :func:`mark_worker_process`), never in the submitting process: the
plan models *infrastructure* failure, and the serial fallback path must stay
safe to run in the master even under an installed plan.

Installation crosses the process boundary through the ``REPRO_FAULT_PLAN``
environment variable (inherited by pool workers at spawn), so a plan must be
installed *before* the backend creates its pool::

    with fault_plan_installed(FaultPlan(seed=7, crash_rate=0.3)):
        with ResilientPoolBackend(max_workers=2) as backend:
            results = backend.run_batch(jobs)

Fault modes, decided once per ``(job_id, attempt)``:

* ``crash``     — the worker process dies via ``os._exit`` (the pool breaks,
  losing every in-flight chunk: the BrokenProcessPool path);
* ``hang``      — the worker sleeps ``hang_seconds`` (exercises the
  per-chunk timeout / pool-rebuild path);
* ``exception`` — the job raises :class:`InjectedFault` (the chunk fails,
  the pool survives);
* ``corrupt``   — the job's result comes back with a scrambled ``job_id``
  (exercises result validation).

``poison_jobs`` lists job ids that crash on **every** attempt — the
incurable failure the resilient backend must bisect down to a structured
:class:`~repro.runner.resilience.JobFailure`.  All other faults are
re-rolled per attempt (and can be limited to the first
``max_faulty_attempts`` attempts), so retried jobs eventually succeed and,
because jobs are pure functions of their inputs, produce bit-identical
results to an undisturbed run.

Network fault modes (the distributed-coordinator vocabulary), decided by an
**independent** draw per ``(job_id, attempt)`` so adding network rates to a
plan never perturbs the legacy schedule above:

* ``disconnect``    — the worker drops its coordinator connection mid-chunk
  (the chunk's lease expires or the eviction path fires);
* ``stall``         — the worker stops heartbeating for ``stall_seconds``
  (exercises heartbeat-timeout eviction and the late-result path);
* ``corrupt_frame`` — the worker's result frame fails its checksum (the
  framing layer must reject it);
* ``duplicate``     — the worker sends its result twice (the coordinator
  must discard the second idempotently).

The same vocabulary drives the *local* pool chaos tests: outside a socket
worker, :meth:`FaultPlan.apply_before_run` maps each network mode onto its
in-process analogue (``disconnect`` → crash, ``stall`` → hang,
``corrupt_frame`` → corrupted result, ``duplicate`` → no-op), while a
distributed worker (marked via :func:`mark_transport_worker`) applies them
natively at the transport layer instead.
"""

from __future__ import annotations

import json
import os
import random
import time
from dataclasses import asdict, dataclass, replace
from typing import Iterator, Optional

from repro.runner.jobs import SimJobResult

#: Environment variable carrying the JSON-encoded plan to worker processes.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: ``job_id`` marker left on a corrupted result (also makes the corruption
#: obvious in a debugger: no real job carries a negative id).
CORRUPTED_JOB_ID = -1

#: Set by :func:`mark_worker_process` (the pool initializer) in workers.
_in_worker_process = False

#: Set by :func:`mark_transport_worker` in distributed (socket) workers:
#: network fault modes are applied natively at the transport layer there,
#: so the in-process aliasing in :meth:`FaultPlan.apply_before_run` /
#: :meth:`FaultPlan.apply_after_run` must not fire a second time.
_network_faults_at_transport = False

#: In-process analogues for the network fault modes (applied in pool
#: workers, where there is no transport to fault): a dropped connection is
#: indistinguishable from a worker death, a stalled heartbeat from a hang;
#: a corrupted frame surfaces as a corrupted result (see
#: :meth:`FaultPlan.apply_after_run`); a duplicated result has no local
#: analogue (the pool cannot deliver a future twice).
_NETWORK_LOCAL_ALIAS: dict[str, Optional[str]] = {
    "disconnect": "crash",
    "stall": "hang",
    "corrupt_frame": None,
    "duplicate": None,
}

#: Plan installed in this process (workers inherit it via fork or re-read
#: the environment variable under spawn).
_installed_plan: Optional["FaultPlan"] = None


class InjectedFault(RuntimeError):
    """The exception raised by the plan's ``exception`` fault mode."""


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, reproducible schedule of worker failures.

    Rates are independent probabilities per ``(job_id, attempt)`` and must
    sum to at most 1.  ``max_faulty_attempts`` (when set) limits injection
    to the first N attempts of each job, giving deterministic
    fail-then-succeed schedules; ``poison_jobs`` crash unconditionally on
    every attempt.
    """

    seed: int = 0
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    exception_rate: float = 0.0
    corrupt_rate: float = 0.0
    hang_seconds: float = 30.0
    poison_jobs: tuple[int, ...] = ()
    max_faulty_attempts: Optional[int] = None
    #: Network fault rates (independent draw — see :meth:`network_mode_for`).
    disconnect_rate: float = 0.0
    stall_rate: float = 0.0
    corrupt_frame_rate: float = 0.0
    duplicate_result_rate: float = 0.0
    #: How long a ``stall`` suppresses heartbeats (distributed workers) /
    #: hangs the job (the local alias).  Small values keep real-clock
    #: integration tests fast; the default models a genuinely wedged worker.
    stall_seconds: float = 5.0

    def __post_init__(self) -> None:
        rates = (
            self.crash_rate,
            self.hang_rate,
            self.exception_rate,
            self.corrupt_rate,
        )
        network_rates = (
            self.disconnect_rate,
            self.stall_rate,
            self.corrupt_frame_rate,
            self.duplicate_result_rate,
        )
        if any(rate < 0.0 or rate > 1.0 for rate in rates + network_rates):
            raise ValueError("fault rates must lie in [0, 1]")
        if sum(rates) > 1.0 + 1e-12:
            raise ValueError("fault rates must sum to at most 1")
        if sum(network_rates) > 1.0 + 1e-12:
            raise ValueError("network fault rates must sum to at most 1")
        if self.hang_seconds <= 0:
            raise ValueError("hang_seconds must be positive")
        if self.stall_seconds <= 0:
            raise ValueError("stall_seconds must be positive")
        if self.max_faulty_attempts is not None and self.max_faulty_attempts < 0:
            raise ValueError("max_faulty_attempts must be non-negative")

    # -- decision ------------------------------------------------------------
    def mode_for(self, job_id: int, attempt: int) -> Optional[str]:
        """The fault (if any) for one execution attempt of one job.

        Pure: the same ``(plan, job_id, attempt)`` always returns the same
        mode.  The draw is seeded through ``random.Random``'s string seeding
        (SHA-512, the :func:`~repro.runner.jobs.mix_seed` idiom) so distinct
        keys get independent decisions.
        """
        if job_id in self.poison_jobs:
            return "crash"
        if (
            self.max_faulty_attempts is not None
            and attempt >= self.max_faulty_attempts
        ):
            return None
        draw = random.Random(f"fault:{self.seed}:{job_id}:{attempt}").random()
        for mode, rate in (
            ("crash", self.crash_rate),
            ("hang", self.hang_rate),
            ("exception", self.exception_rate),
            ("corrupt", self.corrupt_rate),
        ):
            if draw < rate:
                return mode
            draw -= rate
        return None

    def network_mode_for(self, job_id: int, attempt: int) -> Optional[str]:
        """The network fault (if any) for one execution attempt of one job.

        A **separate** seeded draw (key prefix ``netfault:``) from
        :meth:`mode_for`'s, so plans that add network rates reproduce the
        exact legacy crash/hang/exception/corrupt schedule of a plan
        without them — existing chaos expectations survive unperturbed.
        ``max_faulty_attempts`` applies here too, so retried chunks
        eventually cross the network cleanly.
        """
        if (
            self.max_faulty_attempts is not None
            and attempt >= self.max_faulty_attempts
        ):
            return None
        draw = random.Random(f"netfault:{self.seed}:{job_id}:{attempt}").random()
        for mode, rate in (
            ("disconnect", self.disconnect_rate),
            ("stall", self.stall_rate),
            ("corrupt_frame", self.corrupt_frame_rate),
            ("duplicate", self.duplicate_result_rate),
        ):
            if draw < rate:
                return mode
            draw -= rate
        return None

    # -- worker-side application ---------------------------------------------
    def apply_before_run(self, job_id: int, attempt: int) -> None:
        """Fire a pre-execution fault (crash / hang / exception), if any.

        Outside a transport-marked (distributed) worker, network fault
        modes fall through to their in-process analogues here, so one plan
        vocabulary drives both the local pool chaos matrix and the
        coordinator's transport faults.
        """
        mode = self.mode_for(job_id, attempt)
        hang_for = self.hang_seconds
        if mode is None and not _network_faults_at_transport:
            network_mode = self.network_mode_for(job_id, attempt)
            if network_mode is not None:
                mode = _NETWORK_LOCAL_ALIAS[network_mode]
                hang_for = self.stall_seconds  # a stall hangs for its own span
        if mode == "crash":
            # A real worker death (segfault/OOM-kill analogue): skips every
            # Python-level cleanup and breaks the whole pool.
            os._exit(13)
        if mode == "hang":
            # Deliberately a bare sleep: this *is* the hang being injected,
            # not coordination waiting, so it must not go through a fakeable
            # clock.  noqa: SLP001 below names this exemption.
            time.sleep(hang_for)  # noqa: SLP001 — injected hang
        elif mode == "exception":
            raise InjectedFault(
                f"injected exception for job {job_id} (attempt {attempt})"
            )

    def apply_after_run(
        self, job_id: int, attempt: int, result: SimJobResult
    ) -> SimJobResult:
        """Corrupt the result in transit when the mode says so.

        In a local pool worker, a ``corrupt_frame`` network draw also lands
        here: without a framing layer to damage, the nearest analogue is a
        result that fails validation.
        """
        corrupt = self.mode_for(job_id, attempt) == "corrupt"
        if not corrupt and not _network_faults_at_transport:
            corrupt = self.network_mode_for(job_id, attempt) == "corrupt_frame"
        if corrupt:
            return replace(result, job_id=CORRUPTED_JOB_ID)
        return result

    # -- (de)serialization ----------------------------------------------------
    def to_json(self) -> str:
        data = asdict(self)
        data["poison_jobs"] = list(self.poison_jobs)
        return json.dumps(data, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        data["poison_jobs"] = tuple(data.get("poison_jobs", ()))
        return cls(**data)


def mark_worker_process() -> None:
    """Pool-worker initializer: arm fault injection in this process.

    Installed by :class:`~repro.runner.backends.ProcessPoolBackend` on every
    pool it creates.  The flag is what keeps injection out of the submitting
    process (and out of :class:`~repro.runner.backends.SerialBackend` and the
    resilient backend's serial-degradation path).
    """
    global _in_worker_process
    _in_worker_process = True


def mark_transport_worker() -> None:
    """Distributed-worker initializer: network faults fire at the transport.

    A socket worker injects ``disconnect``/``stall``/``corrupt_frame``/
    ``duplicate`` natively (dropping its connection, suppressing heartbeats,
    damaging the frame, re-sending the result), so the in-process aliases in
    :meth:`FaultPlan.apply_before_run` must not fire a second time for the
    same ``(job, attempt)``.
    """
    global _network_faults_at_transport
    _network_faults_at_transport = True


def install_fault_plan(plan: FaultPlan) -> None:
    """Install ``plan`` for every pool created *after* this call.

    Sets both the module global (inherited by forked workers) and the
    ``REPRO_FAULT_PLAN`` environment variable (re-read by spawned workers),
    so installation works under either multiprocessing start method.
    """
    global _installed_plan
    _installed_plan = plan
    os.environ[FAULT_PLAN_ENV] = plan.to_json()


def clear_fault_plan() -> None:
    """Remove any installed plan (idempotent)."""
    global _installed_plan
    _installed_plan = None
    os.environ.pop(FAULT_PLAN_ENV, None)


def active_fault_plan() -> Optional[FaultPlan]:
    """The plan that applies in this process, or ``None``.

    Worker processes that were forked inherit the module global; spawned
    ones fall back to the environment variable.
    """
    if _installed_plan is not None:
        return _installed_plan
    encoded = os.environ.get(FAULT_PLAN_ENV)
    if encoded is None:
        return None
    return FaultPlan.from_json(encoded)


def worker_fault_plan() -> Optional[FaultPlan]:
    """The plan to apply to job execution *here*: armed workers only."""
    if not _in_worker_process:
        return None
    return active_fault_plan()


class fault_plan_installed:
    """Context manager: install a plan for the duration of a ``with`` block.

    Restores the previously installed plan (or the clean state) on exit, so
    chaos tests cannot leak injection into later tests.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self._plan = plan
        self._previous: Optional[FaultPlan] = None

    def __enter__(self) -> FaultPlan:
        self._previous = _installed_plan
        install_fault_plan(self._plan)
        return self._plan

    def __exit__(self, *exc_info: object) -> None:
        if self._previous is None:
            clear_fault_plan()
        else:
            install_fault_plan(self._previous)


def iter_fault_schedule(
    plan: FaultPlan, job_ids: Iterator[int] | list[int], attempts: int = 1
) -> list[tuple[int, int, Optional[str]]]:
    """Tabulate the plan's decisions — a debugging/reporting aid.

    Returns ``(job_id, attempt, mode)`` triples for every job id over the
    first ``attempts`` attempts; handy for asserting a schedule in tests or
    printing what a chaos run is about to do.
    """
    return [
        (job_id, attempt, plan.mode_for(job_id, attempt))
        for job_id in list(job_ids)
        for attempt in range(attempts)
    ]
