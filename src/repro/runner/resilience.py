"""Fault-tolerant batch execution: retry, backoff, poison-job isolation.

The design phase (§4.3) is a long-running, massively parallel search — the
workload where worker crashes, hangs and OOM kills are routine.  The plain
:class:`~repro.runner.backends.ProcessPoolBackend` treats any of those as
fatal for the whole batch; this module adds the layer that survives them:

* :class:`RetryPolicy` — how many attempts a chunk gets, exponential backoff
  with **deterministic** jitter between attempts, an optional per-chunk
  timeout (hang detection), and the pool-rebuild budget before degrading to
  in-process serial execution.  Every wait goes through a :class:`Clock`, so
  tests substitute :class:`FakeClock` and chaos tests never really sleep.
* :class:`ResilientPoolBackend` — a :class:`ProcessPoolBackend` whose
  ``run_batch`` detects broken pools (a worker died), per-chunk timeouts
  (a worker hung) and corrupted results, rebuilds the pool, and resubmits
  **only the lost chunks**.  A chunk that keeps failing is bisected until
  the failure is pinned on a single :class:`~repro.runner.jobs.SimJob`,
  which is reported as a structured :class:`JobFailure` instead of a bare
  traceback.  After ``max_pool_rebuilds`` rebuilds the backend stops
  trusting the pool entirely and degrades to serial in-process execution
  for the remainder of the batch.

Determinism under retry: a :class:`~repro.runner.jobs.SimJob` is a pure
function of its pickled inputs, so re-executing a lost chunk reproduces the
original results bit-for-bit.  ``run_batch`` therefore keeps both of the
plain backends' contracts — submission order (``results[i]`` belongs to
``jobs[i]``) and bit-identical fingerprints — no matter how many faults were
survived along the way (pinned by the golden-parity chaos tests in
``tests/test_resilience.py``).
"""

from __future__ import annotations

import random
import time
from concurrent.futures import FIRST_COMPLETED, Future, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Optional, Protocol, Sequence, Union

from repro.runner.backends import ProcessPoolBackend, _execute_job_chunk
from repro.runner.jobs import (
    SimJob,
    SimJobResult,
    chunk_result_mismatch,
    run_sim_job,
)


# ---------------------------------------------------------------------------
# Clocks: every wait is fakeable
# ---------------------------------------------------------------------------
class Clock(Protocol):
    """The time source the resilience layer is allowed to consult.

    ``repro.runner`` code must never call ``time.sleep`` directly (lint rule
    SLP001): routing all waiting through a clock object is what lets the
    chaos tests run with a :class:`FakeClock` and finish in milliseconds.
    """

    def now(self) -> float:
        """Monotonic seconds (only differences are meaningful)."""
        ...

    def sleep(self, seconds: float) -> None:
        """Block for ``seconds``."""
        ...


class MonotonicClock:
    """The real clock (monotonic time, real sleeping)."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            # The single sanctioned real sleep in repro.runner: every other
            # call site must route through a Clock so tests can fake it.
            time.sleep(seconds)  # noqa: SLP001 — the Clock implementation


class FakeClock:
    """Test clock: sleeping advances virtual time instantly and is recorded."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = start
        self.sleeps: list[float] = []

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self._now += max(0.0, seconds)

    def advance(self, seconds: float) -> None:
        self._now += seconds


# ---------------------------------------------------------------------------
# Policy
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """How hard :class:`ResilientPoolBackend` fights for each chunk.

    ``max_attempts`` counts total tries per chunk (1 = no retry).  Backoff
    before the ``n``-th retry is ``backoff_base * backoff_multiplier**(n-1)``
    capped at ``backoff_max``, scaled by a **deterministic** jitter factor in
    ``[1 - jitter, 1 + jitter]`` derived from ``(seed, key, attempt)`` — so
    two backends retrying the same chunk don't thunder in lockstep, yet a
    rerun of the same batch waits exactly the same schedule (and tests can
    assert it).

    ``chunk_timeout`` (seconds, ``None`` = wait forever) bounds one attempt
    of one chunk; exceeding it is treated as a hung worker and triggers a
    pool rebuild.  ``max_pool_rebuilds`` bounds how many times the pool is
    rebuilt (after a break *or* a timeout kill) before the backend degrades
    to serial in-process execution for the rest of the batch.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.1
    chunk_timeout: Optional[float] = None
    max_pool_rebuilds: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts <= 0:
            raise ValueError("max_attempts must be positive")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff durations must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must lie in [0, 1)")
        if self.chunk_timeout is not None and self.chunk_timeout <= 0:
            raise ValueError("chunk_timeout must be positive (or None)")
        if self.max_pool_rebuilds < 0:
            raise ValueError("max_pool_rebuilds must be non-negative")

    def backoff_seconds(self, attempt: int, key: object = 0) -> float:
        """Delay before retrying after ``attempt`` completed failures.

        Pure: the same ``(policy, attempt, key)`` always yields the same
        delay.  The jitter draw uses ``random.Random`` string seeding (the
        :func:`~repro.runner.jobs.mix_seed` idiom), never ambient entropy.
        """
        if attempt <= 0:
            return 0.0
        delay = self.backoff_base * self.backoff_multiplier ** (attempt - 1)
        delay = min(delay, self.backoff_max)
        if self.jitter:
            rng = random.Random(f"backoff:{self.seed}:{key}:{attempt}")
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay


# ---------------------------------------------------------------------------
# Failure reporting
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class JobFailure:
    """One job that could not be executed, as structured data.

    ``kind`` is one of ``"crash"`` (the worker process died), ``"timeout"``
    (the chunk exceeded the per-chunk timeout), ``"exception"`` (the job
    raised; ``message`` carries the repr) or ``"corrupt"`` (the worker's
    result failed validation).  ``attempts`` counts executions charged to
    the chunk(s) that carried this job at its final bisection level.
    """

    job_id: int
    kind: str
    attempts: int
    message: str = ""

    def describe(self) -> str:
        detail = f": {self.message}" if self.message else ""
        return f"job {self.job_id} failed ({self.kind}, {self.attempts} attempts){detail}"


class PoisonJobError(RuntimeError):
    """Raised by ``run_batch`` when jobs remain failed after all retries.

    Carries the isolated :class:`JobFailure` records (in submission order)
    plus how much of the batch *did* complete — so the caller sees exactly
    which jobs are poison instead of a traceback from deep inside a worker.
    """

    def __init__(self, failures: Sequence[JobFailure], total_jobs: int):
        self.failures = list(failures)
        self.total_jobs = total_jobs
        summary = "; ".join(failure.describe() for failure in self.failures)
        super().__init__(
            f"{len(self.failures)} of {total_jobs} jobs failed permanently "
            f"after retry/bisection: {summary}"
        )


class CorruptResultError(RuntimeError):
    """A worker's chunk result failed validation (wrong shape or job ids)."""


# ---------------------------------------------------------------------------
# The backend
# ---------------------------------------------------------------------------
@dataclass
class _WorkItem:
    """One schedulable unit: a contiguous run of jobs plus its retry state."""

    start: int  # batch offset of jobs[0]
    jobs: tuple[SimJob, ...]
    attempt: int = 0  # completed (failed) attempts so far
    #: Solo-confirmation stage: this item runs with nothing else in flight,
    #: so any failure is unambiguously *its* fault (see _record_failure).
    solo: bool = False

    def job_ids(self) -> list[int]:
        return [job.job_id for job in self.jobs]


#: One slot of a resilient batch result: the job's result, or why it failed.
BatchEntry = Union[SimJobResult, JobFailure]


def record_failure(
    item: _WorkItem,
    kind: str,
    message: str,
    *,
    max_attempts: int,
    results: list[Optional[BatchEntry]],
    failures: list[JobFailure],
    retry_queue: list[_WorkItem],
    solo_queue: list[_WorkItem],
) -> None:
    """Charge one failed attempt to ``item`` and decide its future.

    The shared verdict machinery of the fault-tolerant execution layer,
    used by both :class:`ResilientPoolBackend` and the distributed
    coordinator's lease queue.  Retry while attempts remain; then bisect
    multi-job chunks (each half starts over with a fresh attempt budget).
    A *single* job out of attempts is not condemned yet: a pool break (or a
    worker eviction) charges every in-flight chunk — the culprit cannot be
    told from its victims — so an innocent job can exhaust its attempts
    purely collaterally.  It is instead promoted to the
    **solo-confirmation** queue — re-run with nothing else in flight
    (locally) or on a fresh lease (distributed), where a failure is
    unambiguously its own — and only a job that also exhausts its solo
    attempts becomes a :class:`JobFailure`.
    """
    attempt = item.attempt + 1
    if attempt < max_attempts:
        retry_queue.append(replace(item, attempt=attempt))
        return
    if len(item.jobs) > 1:
        mid = len(item.jobs) // 2
        retry_queue.append(_WorkItem(item.start, item.jobs[:mid]))
        retry_queue.append(_WorkItem(item.start + mid, item.jobs[mid:]))
        return
    if not item.solo:
        solo_queue.append(_WorkItem(item.start, item.jobs, solo=True))
        return
    failure = JobFailure(
        job_id=item.jobs[0].job_id, kind=kind, attempts=attempt, message=message
    )
    failures.append(failure)
    results[item.start] = failure


def run_item_serially(
    item: _WorkItem,
    results: list[Optional[BatchEntry]],
    failures: list[JobFailure],
) -> None:
    """Execute one work item in-process — the shared degraded path.

    Used when a backend stops trusting its workers: the resilient pool
    after too many rebuilds, and the distributed coordinator when no worker
    is alive.  Runs job by job so a genuine per-job exception is attributed
    to that job alone.  Statistics collection mirrors the worker chunk
    entry point, so training-mode delta merging is unaffected by
    degradation.  Injected faults do not fire here: this is not a worker
    process.
    """
    for offset, job in enumerate(item.jobs):
        try:
            result = run_sim_job(
                job, collect_stats=job.training and job.tree is not None
            )
        except Exception as exc:
            failure = JobFailure(
                job_id=job.job_id,
                kind="exception",
                attempts=item.attempt + 1,
                message=repr(exc),
            )
            failures.append(failure)
            results[item.start + offset] = failure
        else:
            results[item.start + offset] = result


class ResilientPoolBackend(ProcessPoolBackend):
    """A process pool that survives worker crashes, hangs and bad results.

    Semantics on top of :class:`ProcessPoolBackend`:

    * a chunk lost to a pool break, timeout, exception or corrupt result is
      retried (after deterministic backoff) up to ``retry.max_attempts``
      times; chunks still in flight when the pool breaks are resubmitted
      without being charged an attempt of their own beyond the shared one;
    * a chunk that exhausts its attempts is **bisected** and each half
      retried afresh, recursively, until the failure is pinned on a single
      job — the poison job — which becomes a :class:`JobFailure`;
    * every pool break or timeout kill rebuilds the pool; after
      ``retry.max_pool_rebuilds`` rebuilds the backend *degrades*: the rest
      of the batch runs serially in this process (fault injection stays off
      there — it models worker infrastructure, not the math);
    * ``on_failure="raise"`` (default) raises :class:`PoisonJobError` naming
      every permanently failed job once the rest of the batch has been
      driven to completion; ``on_failure="return"`` instead places the
      :class:`JobFailure` in that job's result slot, for callers prepared
      to handle partial batches.

    Both of ``run_batch``'s contracts survive: results come back in
    submission order, and — because jobs are pure and retries are whole
    re-executions — they are bit-identical to an undisturbed run.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        chunk_jobs: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        clock: Optional[Clock] = None,
        on_failure: str = "raise",
    ) -> None:
        super().__init__(max_workers=max_workers, chunk_jobs=chunk_jobs)
        if on_failure not in ("raise", "return"):
            raise ValueError("on_failure must be 'raise' or 'return'")
        self.retry = retry if retry is not None else RetryPolicy()
        self.clock: Clock = clock if clock is not None else MonotonicClock()
        self.on_failure = on_failure
        self.pool_rebuilds = 0
        self.degraded = False

    # -- pool lifecycle ------------------------------------------------------
    def _rebuild_pool(self) -> None:
        """Tear the executor down hard and count the rebuild.

        Used for both break (workers already dead) and timeout (a worker is
        alive but hung — it must be terminated, or ``shutdown`` would block
        on it forever).
        """
        self.pool_rebuilds += 1
        executor = self._executor
        self._executor = None
        if executor is None:
            return
        processes = getattr(executor, "_processes", None) or {}
        for process in list(processes.values()):
            if process.is_alive():
                process.terminate()
        executor.shutdown(wait=False, cancel_futures=True)
        if self.pool_rebuilds > self.retry.max_pool_rebuilds:
            self.degraded = True

    # -- failure bookkeeping -------------------------------------------------
    def _record_failure(
        self,
        item: _WorkItem,
        kind: str,
        message: str,
        results: list[Optional[BatchEntry]],
        failures: list[JobFailure],
        retry_queue: list[_WorkItem],
        solo_queue: list[_WorkItem],
    ) -> None:
        """Delegate to the shared :func:`record_failure` verdict machinery."""
        record_failure(
            item,
            kind,
            message,
            max_attempts=self.retry.max_attempts,
            results=results,
            failures=failures,
            retry_queue=retry_queue,
            solo_queue=solo_queue,
        )

    @staticmethod
    def _validate_chunk(item: _WorkItem, chunk_results: list[SimJobResult]) -> None:
        mismatch = chunk_result_mismatch(list(item.jobs), chunk_results)
        if mismatch is not None:
            raise CorruptResultError(
                f"{mismatch} (batch offset {item.start}) — result rejected "
                "and the chunk will be re-executed"
            )

    # -- serial degradation --------------------------------------------------
    def _run_item_serially(
        self,
        item: _WorkItem,
        results: list[Optional[BatchEntry]],
        failures: list[JobFailure],
    ) -> None:
        """Delegate to the shared :func:`run_item_serially` degraded path."""
        run_item_serially(item, results, failures)

    # -- the batch loop ------------------------------------------------------
    def run_batch(self, jobs: Sequence[SimJob]) -> list[SimJobResult]:
        prepared = self._prepare(jobs)
        if not prepared:
            return []
        chunk = self._chunk_size(len(prepared))
        queue: list[_WorkItem] = [
            _WorkItem(start, tuple(prepared[start : start + chunk]))
            for start in range(0, len(prepared), chunk)
        ]
        results: list[Optional[BatchEntry]] = [None] * len(prepared)
        failures: list[JobFailure] = []
        solo_queue: list[_WorkItem] = []
        timeout = self.retry.chunk_timeout
        pending: dict[Future[list[SimJobResult]], tuple[_WorkItem, Optional[float]]]
        pending = {}

        while queue or pending or solo_queue:
            if self.degraded:
                # pending is always drained before degradation flips on.
                for item in queue + solo_queue:
                    self._run_item_serially(item, results, failures)
                queue = []
                solo_queue = []
                break
            if not queue and not pending and solo_queue:
                # Solo confirmation: one suspect at a time, nothing else in
                # flight, so a failure is unambiguously attributable.  (Its
                # own retries keep it alone until it passes or is condemned.)
                queue.append(solo_queue.pop(0))

            executor = self._ensure_executor()
            try:
                for index, item in enumerate(queue):
                    future = executor.submit(
                        _execute_job_chunk, list(item.jobs), item.attempt
                    )
                    deadline = (
                        self.clock.now() + timeout if timeout is not None else None
                    )
                    pending[future] = (item, deadline)
            except BrokenProcessPool:
                # The pool broke between waves (a crash we had not consumed
                # yet).  Requeue the unsubmitted tail; in-flight futures are
                # handled by the normal broken-pool wave below.  With nothing
                # in flight there is no wave to detect the break, so rebuild
                # here or the next iteration would resubmit to the same
                # broken executor forever.
                queue = queue[index:]
                if not pending:
                    self._rebuild_pool()
                    continue
            else:
                queue = []

            wait_timeout: Optional[float] = None
            deadlines = [dl for _, dl in pending.values() if dl is not None]
            if deadlines:
                wait_timeout = max(0.0, min(deadlines) - self.clock.now())
            done, _ = wait(set(pending), timeout=wait_timeout, return_when=FIRST_COMPLETED)

            retry_queue: list[_WorkItem] = []
            pool_broken = False

            def consume(future: Future[list[SimJobResult]]) -> None:
                nonlocal pool_broken
                item, _deadline = pending.pop(future)
                try:
                    chunk_results = future.result()
                    self._validate_chunk(item, chunk_results)
                except BrokenProcessPool as exc:
                    pool_broken = True
                    self._record_failure(
                        item, "crash", repr(exc), results, failures,
                        retry_queue, solo_queue,
                    )
                except CorruptResultError as exc:
                    self._record_failure(
                        item, "corrupt", str(exc), results, failures,
                        retry_queue, solo_queue,
                    )
                except Exception as exc:
                    self._record_failure(
                        item, "exception", repr(exc), results, failures,
                        retry_queue, solo_queue,
                    )
                else:
                    for offset, result in enumerate(chunk_results):
                        results[item.start + offset] = result

            for future in done:
                consume(future)
            # A pool break completes the remaining futures exceptionally in
            # short order — drain them now so one break is handled as one
            # wave (one rebuild), not one wave per future.
            if pool_broken:
                for future in list(pending):
                    if future.done():
                        consume(future)

            # Hang detection: any still-pending chunk past its deadline.
            expired: list[Future[list[SimJobResult]]] = []
            if timeout is not None:
                now = self.clock.now()
                expired = [
                    future
                    for future, (_, deadline) in pending.items()
                    if deadline is not None and deadline <= now and not future.done()
                ]

            if pool_broken or expired:
                for future in expired:
                    item, _deadline = pending.pop(future)
                    self._record_failure(
                        item,
                        "timeout",
                        f"chunk exceeded chunk_timeout={timeout}s",
                        results,
                        failures,
                        retry_queue,
                        solo_queue,
                    )
                # Whatever else was in flight is collateral of the rebuild:
                # resubmit it as-is, without charging an attempt.
                for future, (item, _deadline) in pending.items():
                    retry_queue.append(item)
                pending.clear()
                self._rebuild_pool()

            if retry_queue:
                delay = max(
                    self.retry.backoff_seconds(item.attempt, key=item.start)
                    for item in retry_queue
                )
                if delay > 0 and not self.degraded:
                    self.clock.sleep(delay)
                queue.extend(retry_queue)

        if failures and self.on_failure == "raise":
            raise PoisonJobError(failures, total_jobs=len(prepared))
        return results  # type: ignore[return-value]  # every slot filled above

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResilientPoolBackend(max_workers={self.max_workers}, "
            f"retry={self.retry!r}, degraded={self.degraded})"
        )

