"""§1 summary tables: median speedup and delay reduction of a RemyCC.

The paper's introduction condenses two experiments into tables of, for each
existing protocol, the RemyCC's median-throughput speedup and median
queueing-delay reduction:

* the 15 Mbps dumbbell with eight senders (the Figure 4 scenario), and
* the Verizon LTE downlink trace with four senders (the Figure 7 scenario).

These harnesses simply run the corresponding figure experiment and convert
its summaries into :class:`~repro.analysis.compare.SpeedupRow` rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.analysis.compare import SpeedupRow, format_speedup_table, speedup_table
from repro.experiments.base import ExperimentResult, SchemeSpec, standard_schemes
from repro.experiments.cellular import run_figure7
from repro.experiments.dumbbell import run_figure4

#: The baselines named in the §1 tables, in the paper's order.
SUMMARY_BASELINES = ("Compound", "NewReno", "Cubic", "Vegas", "Cubic/sfqCoDel", "XCP")


@dataclass
class SummaryTable:
    """One §1-style table: the experiment it came from plus the speedup rows."""

    name: str
    remycc: str
    rows: list[SpeedupRow] = field(default_factory=list)
    experiment: Optional[ExperimentResult] = None

    def row_for(self, baseline: str) -> SpeedupRow:
        for row in self.rows:
            if row.baseline == baseline:
                return row
        raise KeyError(baseline)

    def format(self) -> str:
        return f"== {self.name} ==\n" + format_speedup_table(self.rows, remycc_name=self.remycc)


def _build_table(
    name: str,
    experiment: ExperimentResult,
    remy_scheme: str,
    baselines: Sequence[str] = SUMMARY_BASELINES,
) -> SummaryTable:
    remy_summary = experiment[remy_scheme]
    baseline_summaries = [experiment[b] for b in baselines if b in experiment.summaries]
    rows = speedup_table(remy_summary, baseline_summaries)
    return SummaryTable(name=name, remycc=remy_scheme, rows=rows, experiment=experiment)


def run_dumbbell_summary(
    n_runs: int = 4,
    duration: float = 30.0,
    remy_scheme: str = "Remy d=0.1",
    schemes: Optional[Sequence[SchemeSpec]] = None,
) -> SummaryTable:
    """The first §1 table: dumbbell, 15 Mbps, eight senders."""
    experiment = run_figure4(n_runs=n_runs, duration=duration, schemes=schemes)
    return _build_table(
        "Summary: 15 Mbps dumbbell, n=8 (speedup vs existing protocols)",
        experiment,
        remy_scheme,
    )


def run_lte_summary(
    n_runs: int = 2,
    duration: float = 30.0,
    remy_scheme: str = "Remy d=0.1",
    schemes: Optional[Sequence[SchemeSpec]] = None,
) -> SummaryTable:
    """The second §1 table: Verizon LTE downlink trace, four senders."""
    experiment = run_figure7(n_runs=n_runs, duration=duration, schemes=schemes)
    return _build_table(
        "Summary: Verizon LTE downlink, n=4 (speedup vs existing protocols)",
        experiment,
        remy_scheme,
    )
