"""§5.5: the datacenter comparison of DCTCP against a RemyCC.

The paper simulates 64 senders sharing a 10 Gbps link with a 4 ms RTT; each
sender transfers 20 MB on average (exponentially distributed) with a mean off
time of 100 ms.  DCTCP runs over an ECN-marking RED gateway; the RemyCC
(designed for the minimum-potential-delay objective, -1/throughput) runs over
a 1000-packet tail-drop queue.  The paper reports the mean and median
per-flow throughput and RTT.

A 10 Gbps packet-level simulation is ~800k packets per simulated second; to
keep the default run affordable in pure Python the harness exposes a
``scale`` factor that divides the link rate, sender count and flow size
together (which preserves the per-flow bandwidth share and the queueing
dynamics that drive the comparison).  ``scale=1`` reproduces the paper's
exact parameters.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, replace

from repro.core.pretrained import pretrained_remycc
from repro.netsim.simulator import Simulation
from repro.protocols.dctcp import DCTCP
from repro.protocols.remycc import RemyCCProtocol
from repro.scenarios import get_scenario
from repro.traffic.onoff import ByteFlowWorkload


@dataclass
class DatacenterRow:
    """One row of the §5.5 results table."""

    scheme: str
    mean_throughput_mbps: float
    median_throughput_mbps: float
    mean_rtt_ms: float
    median_rtt_ms: float

    def format(self) -> str:
        return (
            f"{self.scheme:22s} tput: {self.mean_throughput_mbps:8.1f}, "
            f"{self.median_throughput_mbps:8.1f} Mbps   rtt: {self.mean_rtt_ms:6.2f}, "
            f"{self.median_rtt_ms:6.2f} ms"
        )


@dataclass
class DatacenterResult:
    """Both rows of the §5.5 table plus the scenario parameters."""

    dctcp: DatacenterRow
    remycc: DatacenterRow
    scale: int
    n_flows: int
    link_rate_bps: float

    def format_table(self) -> str:
        header = f"== Datacenter (scale 1/{self.scale}): {self.n_flows} senders, {self.link_rate_bps / 1e9:.2f} Gbps =="
        return "\n".join([header, self.dctcp.format(), self.remycc.format()])


def _summarise(scheme: str, result) -> DatacenterRow:
    flows = [s for s in result.flow_stats if s.on_time > 0 and s.rtt_count > 0]
    tputs = [s.throughput_mbps() for s in flows] or [0.0]
    rtts = [s.avg_rtt() * 1000 for s in flows] or [0.0]
    return DatacenterRow(
        scheme=scheme,
        mean_throughput_mbps=statistics.fmean(tputs),
        median_throughput_mbps=statistics.median(tputs),
        mean_rtt_ms=statistics.fmean(rtts),
        median_rtt_ms=statistics.median(rtts),
    )


def run_datacenter(
    scale: int = 16,
    duration: float = 3.0,
    seed: int = 5,
    marking_threshold_packets: float = 65.0,
) -> DatacenterResult:
    """Run the §5.5 comparison at ``1/scale`` of the paper's absolute size.

    With ``scale=16`` the scenario becomes 4 senders sharing 625 Mbps with
    1.25 MB flows — the same per-flow share and buffer-to-BDP ratio as the
    paper's 64-sender, 10 Gbps configuration.
    """
    if scale <= 0 or 64 % scale != 0:
        raise ValueError("scale must be a positive divisor of 64")
    n_flows = 64 // scale
    link_rate = 10e9 / scale
    mean_flow_bytes = 20e6 / scale
    rtt = 0.004

    def workloads() -> list[ByteFlowWorkload]:
        return [
            ByteFlowWorkload.exponential(
                mean_flow_bytes=mean_flow_bytes, mean_off_seconds=0.1
            )
            for _ in range(n_flows)
        ]

    # DCTCP over the ECN-marking gateway: the registry cell (pinned at 1/32
    # scale) re-scaled to the requested size.
    dctcp_spec = replace(
        get_scenario("datacenter-dctcp").network,
        link_rate_bps=link_rate,
        rtt=rtt,
        n_flows=n_flows,
        dctcp_marking_threshold=marking_threshold_packets,
    )
    dctcp_sim = Simulation(
        dctcp_spec,
        [DCTCP() for _ in range(n_flows)],
        workloads(),
        duration=duration,
        seed=seed,
    )
    dctcp_row = _summarise("DCTCP (ECN)", dctcp_sim.run())

    # RemyCC (minimum-potential-delay objective) over plain DropTail.
    tree = pretrained_remycc("datacenter")
    remy_spec = replace(dctcp_spec, queue="droptail")
    remy_sim = Simulation(
        remy_spec,
        [RemyCCProtocol(tree) for _ in range(n_flows)],
        workloads(),
        duration=duration,
        seed=seed,
    )
    remy_row = _summarise("RemyCC (DropTail)", remy_sim.run())

    return DatacenterResult(
        dctcp=dctcp_row,
        remycc=remy_row,
        scale=scale,
        n_flows=n_flows,
        link_rate_bps=link_rate,
    )
