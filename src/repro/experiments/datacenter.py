"""§5.5: the datacenter comparison of DCTCP against a RemyCC.

The paper simulates 64 senders sharing a 10 Gbps link with a 4 ms RTT; each
sender transfers 20 MB on average (exponentially distributed) with a mean off
time of 100 ms.  DCTCP runs over an ECN-marking RED gateway; the RemyCC
(designed for the minimum-potential-delay objective, -1/throughput) runs over
a 1000-packet tail-drop queue.  The paper reports the mean and median
per-flow throughput and RTT.

A 10 Gbps packet-level simulation is ~800k packets per simulated second; to
keep the default run affordable in pure Python the harness exposes a
``scale`` factor that divides the link rate, sender count and flow size
together (which preserves the per-flow bandwidth share and the queueing
dynamics that drive the comparison).  ``scale=1`` reproduces the paper's
exact parameters.

Both rows run through the shared cell runner
(:func:`~repro.experiments.base.run_cell_results`): the registry cell
(pinned at 1/32 scale) is re-scaled via ``override`` and the RemyCC row
derives from it by swapping the queue and protocol set — output is
bit-identical to the hand-written ``Simulation`` calls this replaces.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Optional

from repro.experiments.base import run_cell_results
from repro.netsim.simulator import SimulationResult
from repro.runner import ExecutionBackend
from repro.scenarios import ProtocolSpec, get_scenario
from repro.traffic.onoff import ByteFlowWorkload


@dataclass
class DatacenterRow:
    """One row of the §5.5 results table."""

    scheme: str
    mean_throughput_mbps: float
    median_throughput_mbps: float
    mean_rtt_ms: float
    median_rtt_ms: float

    def format(self) -> str:
        return (
            f"{self.scheme:22s} tput: {self.mean_throughput_mbps:8.1f}, "
            f"{self.median_throughput_mbps:8.1f} Mbps   rtt: {self.mean_rtt_ms:6.2f}, "
            f"{self.median_rtt_ms:6.2f} ms"
        )


@dataclass
class DatacenterResult:
    """Both rows of the §5.5 table plus the scenario parameters."""

    dctcp: DatacenterRow
    remycc: DatacenterRow
    scale: int
    n_flows: int
    link_rate_bps: float

    def format_table(self) -> str:
        header = f"== Datacenter (scale 1/{self.scale}): {self.n_flows} senders, {self.link_rate_bps / 1e9:.2f} Gbps =="
        return "\n".join([header, self.dctcp.format(), self.remycc.format()])


def _summarise(scheme: str, result: SimulationResult) -> DatacenterRow:
    flows = [s for s in result.flow_stats if s.on_time > 0 and s.rtt_count > 0]
    tputs = [s.throughput_mbps() for s in flows] or [0.0]
    rtts = [s.avg_rtt() * 1000 for s in flows] or [0.0]
    return DatacenterRow(
        scheme=scheme,
        mean_throughput_mbps=statistics.fmean(tputs),
        median_throughput_mbps=statistics.median(tputs),
        mean_rtt_ms=statistics.fmean(rtts),
        median_rtt_ms=statistics.median(rtts),
    )


def run_datacenter(
    scale: int = 16,
    duration: float = 3.0,
    seed: int = 5,
    marking_threshold_packets: float = 65.0,
    backend: Optional[ExecutionBackend] = None,
) -> DatacenterResult:
    """Run the §5.5 comparison at ``1/scale`` of the paper's absolute size.

    With ``scale=16`` the scenario becomes 4 senders sharing 625 Mbps with
    1.25 MB flows — the same per-flow share and buffer-to-BDP ratio as the
    paper's 64-sender, 10 Gbps configuration.
    """
    if scale <= 0 or 64 % scale != 0:
        raise ValueError("scale must be a positive divisor of 64")
    n_flows = 64 // scale
    link_rate = 10e9 / scale
    mean_flow_bytes = 20e6 / scale

    # DCTCP over the ECN-marking gateway: the registry cell (pinned at 1/32
    # scale) re-scaled to the requested size.
    dctcp_cell = get_scenario("datacenter-dctcp").override(
        link_rate_bps=link_rate,
        rtt=0.004,
        n_flows=n_flows,
        dctcp_marking_threshold=marking_threshold_packets,
        workload=ByteFlowWorkload.exponential(
            mean_flow_bytes=mean_flow_bytes, mean_off_seconds=0.1
        ),
    )
    # RemyCC (minimum-potential-delay objective) over plain DropTail.
    remy_cell = dctcp_cell.override(
        queue="droptail",
        protocols=(ProtocolSpec("remy", tree="datacenter"),),
    )
    # Both rows run at the same seed on purpose: the paper compares the two
    # schemes on identical workload randomness.
    common = dict(
        n_runs=1,
        duration=duration,
        base_seed=seed,
        seed_derivation=lambda _cell, base, run: base + run,
        backend=backend,
    )
    dctcp_row = _summarise("DCTCP (ECN)", run_cell_results(dctcp_cell, **common)[0])
    remy_row = _summarise("RemyCC (DropTail)", run_cell_results(remy_cell, **common)[0])

    return DatacenterResult(
        dctcp=dctcp_row,
        remycc=remy_row,
        scale=scale,
        n_flows=n_flows,
        link_rate_bps=link_rate,
    )
