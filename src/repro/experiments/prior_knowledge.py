"""Figure 11: how helpful is prior knowledge about the network? (§5.7)

Two RemyCCs with different design-time assumptions about the link speed — one
told the speed exactly (15 Mbps, the "1×" table) and one told only that it
lies within a tenfold range (4.7-47 Mbps, "10×") — are compared against
Cubic-over-sfqCoDel while the *actual* link speed sweeps across and beyond
those ranges.  The y-axis of the figure is the per-flow objective
``log(normalized throughput) - log(normalized delay)``; the signature result
is that the 1× table wins at its design point but collapses once its
assumption is violated, while the 10× table is robust across its whole band.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from repro.core.objective import Objective
from repro.experiments.base import SchemeSpec, remycc_scheme, run_scheme_results
from repro.protocols.cubic import Cubic
from repro.runner import ExecutionBackend
from repro.scenarios import get_scenario
from repro.traffic.onoff import TimedFlowWorkload

#: Link speeds swept in the scaled-down default run (the paper sweeps roughly
#: 1-100 Mbps on a log axis; these points cover the same structure: below the
#: 10x range, the 10x band edges, the 1x design point, and above the range).
DEFAULT_LINK_SPEEDS_MBPS = (2.0, 4.7, 8.0, 15.0, 25.0, 47.0, 80.0)


@dataclass
class PriorKnowledgePoint:
    """Objective score of one scheme at one true link speed."""

    scheme: str
    link_speed_mbps: float
    score: float
    mean_throughput_mbps: float
    mean_queue_delay_ms: float


@dataclass
class PriorKnowledgeResult:
    """The Figure 11 sweep: scores per scheme per link speed."""

    points: list[PriorKnowledgePoint] = field(default_factory=list)

    def schemes(self) -> list[str]:
        return sorted({p.scheme for p in self.points})

    def series(self, scheme: str) -> list[tuple[float, float]]:
        """(link speed, score) pairs for one scheme, sorted by speed."""
        pairs = [(p.link_speed_mbps, p.score) for p in self.points if p.scheme == scheme]
        return sorted(pairs)

    def score_at(self, scheme: str, link_speed_mbps: float) -> float:
        for point in self.points:
            if point.scheme == scheme and abs(point.link_speed_mbps - link_speed_mbps) < 1e-9:
                return point.score
        raise KeyError(f"no point for {scheme} at {link_speed_mbps} Mbps")

    def format_table(self) -> str:
        schemes = self.schemes()
        speeds = sorted({p.link_speed_mbps for p in self.points})
        header = "link speed (Mbps)" + "".join(f"  {s:>16s}" for s in schemes)
        lines = ["== Figure 11: log(throughput) - log(delay) vs link speed ==", header]
        for speed in speeds:
            row = f"{speed:17.1f}"
            for scheme in schemes:
                try:
                    row += f"  {self.score_at(scheme, speed):16.3f}"
                except KeyError:
                    row += f"  {'-':>16s}"
            lines.append(row)
        return "\n".join(lines)


def default_schemes() -> list[SchemeSpec]:
    """The three curves of Figure 11."""
    return [
        remycc_scheme("1x", label="RemyCC 1x"),
        remycc_scheme("10x", label="RemyCC 10x"),
        SchemeSpec("Cubic/sfqCoDel", Cubic, queue="sfqcodel"),
    ]


def run_figure11(
    link_speeds_mbps: Sequence[float] = DEFAULT_LINK_SPEEDS_MBPS,
    schemes: Optional[Sequence[SchemeSpec]] = None,
    n_flows: int = 2,
    n_runs: int = 2,
    duration: float = 20.0,
    rtt: float = 0.150,
    base_seed: int = 110,
    backend: Optional[ExecutionBackend] = None,
) -> PriorKnowledgeResult:
    """Sweep the true link speed and score every scheme with the §3.3 objective.

    The per-point ``run`` fan-out goes through the shared raw-results runner
    (:func:`~repro.experiments.base.run_scheme_results`) under the
    historical ``base_seed * 13 + run_index`` seeds, bit-identical to the
    hand-written ``Simulation`` loop this replaces.
    """
    schemes = list(schemes) if schemes is not None else default_schemes()
    objective = Objective.proportional(delta=1.0)
    result = PriorKnowledgeResult()

    # The registry cell carries the base dumbbell topology; the harness keeps
    # its own workloads (per-flow start_on below), so only the network is
    # resolved — replace() rather than override(), which would re-validate
    # the cell's 2-flow per_flow_workloads against the requested n_flows.
    base_network = get_scenario("fig11-prior-1x").network
    for speed_mbps in link_speeds_mbps:
        for scheme in schemes:
            # The scheme runner applies ``scheme.queue`` itself (sfqCoDel for
            # the Cubic curve); the base spec pins the tail-drop default.
            spec = replace(
                base_network,
                link_rate_bps=speed_mbps * 1e6,
                rtt=rtt,
                n_flows=n_flows,
                queue="droptail",
            )
            run_results = run_scheme_results(
                scheme,
                spec,
                lambda fid: TimedFlowWorkload.exponential(
                    mean_on_seconds=5.0, mean_off_seconds=5.0, start_on=(fid == 0)
                ),
                n_runs=n_runs,
                duration=duration,
                base_seed=base_seed,
                seed_for_run=lambda base, run: base * 13 + run,
                backend=backend,
            )
            scores, tputs, delays = [], [], []
            for run_result in run_results:
                fair_share = spec.link_rate_bps / n_flows
                for stats in run_result.active_flows():
                    avg_rtt = stats.avg_rtt() if stats.rtt_count else rtt
                    scores.append(
                        objective.score_flow(
                            throughput_bps=stats.throughput_bps(),
                            delay_seconds=max(avg_rtt, rtt),
                            fair_share_bps=fair_share,
                            min_rtt_seconds=rtt,
                        )
                    )
                    tputs.append(stats.throughput_mbps())
                    delays.append(stats.avg_queue_delay_ms())
            result.points.append(
                PriorKnowledgePoint(
                    scheme=scheme.name,
                    link_speed_mbps=speed_mbps,
                    score=statistics.fmean(scores) if scores else float("-inf"),
                    mean_throughput_mbps=statistics.fmean(tputs) if tputs else 0.0,
                    mean_queue_delay_ms=statistics.fmean(delays) if delays else 0.0,
                )
            )
    return result
