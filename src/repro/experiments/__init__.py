"""Experiment harnesses: one module per figure/table of the paper's evaluation.

Every harness exposes a ``run_*`` function returning a structured result that
the corresponding benchmark in ``benchmarks/`` prints in the same shape as
the paper's figure or table.  All harnesses accept scaled-down defaults
(fewer runs, shorter simulated durations) so they complete in seconds with a
pure-Python simulator, plus explicit parameters for paper-scale runs.

==============================  ============================================
Module                          Reproduces
==============================  ============================================
``experiments.dumbbell``        Figures 4 and 5 (single-bottleneck dumbbell)
``experiments.convergence``     Figure 6 (sequence plot / convergence)
``experiments.cellular``        Figures 7, 8, 9 (LTE trace-driven links)
``experiments.rtt_fairness``    Figure 10 (RTT unfairness)
``experiments.datacenter``      §5.5 table (DCTCP vs RemyCC)
``experiments.competing``       §5.6 tables (RemyCC vs Compound / Cubic)
``experiments.prior_knowledge`` Figure 11 (1× vs 10× design ranges)
``experiments.summary_tables``  §1 summary tables (speedups vs baselines)
==============================  ============================================
"""

from repro.experiments.base import (
    ExperimentResult,
    SchemeSpec,
    legacy_seed,
    remycc_scheme,
    resolve_scenario,
    run_cell_experiment,
    run_scenario_schemes,
    run_scenario_sweep,
    run_scheme,
    run_schemes,
    standard_schemes,
    sweep_seed,
)

__all__ = [
    "ExperimentResult",
    "SchemeSpec",
    "legacy_seed",
    "remycc_scheme",
    "resolve_scenario",
    "run_cell_experiment",
    "run_scenario_schemes",
    "run_scenario_sweep",
    "run_scheme",
    "run_schemes",
    "standard_schemes",
    "sweep_seed",
]
