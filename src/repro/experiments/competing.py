"""§5.6: incremental deployment — a RemyCC competing with Compound or Cubic.

A single 15 Mbps tail-drop bottleneck (150 ms baseline RTT) is shared by one
RemyCC flow and one flow of an existing protocol, with no active queue
management.  The RemyCC used here was designed for round-trip times between
100 ms and 10 s so that it can tolerate a buffer-filling competitor.

Two sweeps reproduce the paper's two tables:

* versus **Compound**: ICSI flow lengths, sweeping the mean off time over
  {200 ms, 100 ms, 10 ms} (the senders' duty cycle);
* versus **Cubic**: exponential flow lengths of mean 100 kB and 1 MB with a
  500 ms mean off time.

Each table row is a mixed-protocol cell — the registry's
``competing-remy-cubic`` with the contender and workload swapped in — run
through the shared cell runner
(:func:`~repro.experiments.base.run_cell_results`) under the historical
``base_seed * 31 + run_index`` seeds, bit-identical to the hand-written
``Simulation`` loop this replaces.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.experiments.base import run_cell_results
from repro.runner import ExecutionBackend
from repro.scenarios import ProtocolSpec, get_scenario
from repro.traffic.distributions import ExponentialDistribution
from repro.traffic.flowsize import icsi_flow_length_distribution
from repro.traffic.onoff import ByteFlowWorkload


@dataclass
class CompetingRow:
    """Mean (and standard deviation) throughput of each contender in one setting."""

    setting: str
    remy_mean_mbps: float
    remy_std_mbps: float
    other_mean_mbps: float
    other_std_mbps: float
    other_name: str

    def format(self) -> str:
        return (
            f"{self.setting:16s} RemyCC {self.remy_mean_mbps:5.2f} ({self.remy_std_mbps:.2f}) Mbps   "
            f"{self.other_name} {self.other_mean_mbps:5.2f} ({self.other_std_mbps:.2f}) Mbps"
        )


@dataclass
class CompetingResult:
    """One §5.6 table: rows over the swept parameter."""

    other_name: str
    rows: list[CompetingRow] = field(default_factory=list)

    def format_table(self) -> str:
        lines = [f"== Competing protocols: RemyCC vs {self.other_name} =="]
        lines.extend(row.format() for row in self.rows)
        return "\n".join(lines)


def _competing_run(
    other_protocol: str,
    other_name: str,
    workload: ByteFlowWorkload,
    setting: str,
    n_runs: int,
    duration: float,
    base_seed: int,
    remy_tree_name: str = "coexist",
    backend: Optional[ExecutionBackend] = None,
) -> CompetingRow:
    """One table row: the RemyCC vs one contender under one workload."""
    cell = get_scenario("competing-remy-cubic").override(
        protocols=(
            ProtocolSpec("remy", tree=remy_tree_name),
            ProtocolSpec(other_protocol),
        ),
        workload=workload,
    )
    results = run_cell_results(
        cell,
        n_runs=n_runs,
        duration=duration,
        base_seed=base_seed,
        seed_derivation=lambda _cell, base, run: base * 31 + run,
        backend=backend,
    )
    remy_tputs = [result.flow_stats[0].throughput_mbps() for result in results]
    other_tputs = [result.flow_stats[1].throughput_mbps() for result in results]
    return CompetingRow(
        setting=setting,
        remy_mean_mbps=statistics.fmean(remy_tputs),
        remy_std_mbps=statistics.stdev(remy_tputs) if len(remy_tputs) > 1 else 0.0,
        other_mean_mbps=statistics.fmean(other_tputs),
        other_std_mbps=statistics.stdev(other_tputs) if len(other_tputs) > 1 else 0.0,
        other_name=other_name,
    )


def run_vs_compound(
    off_times_seconds: tuple[float, ...] = (0.200, 0.100, 0.010),
    n_runs: int = 3,
    duration: float = 30.0,
    max_flow_bytes: float = 20e6,
    base_seed: int = 61,
    backend: Optional[ExecutionBackend] = None,
) -> CompetingResult:
    """RemyCC vs Compound: ICSI flow lengths, sweeping the mean off time."""
    flow_sizes = icsi_flow_length_distribution(maximum_bytes=max_flow_bytes)
    result = CompetingResult(other_name="Compound")
    for off in off_times_seconds:
        row = _competing_run(
            "compound",
            "Compound",
            ByteFlowWorkload(flow_size=flow_sizes, mean_off_seconds=off),
            setting=f"off={off * 1000:.0f} ms",
            n_runs=n_runs,
            duration=duration,
            base_seed=base_seed,
            backend=backend,
        )
        result.rows.append(row)
    return result


def run_vs_cubic(
    mean_flow_bytes: tuple[float, ...] = (100e3, 1e6),
    mean_off_seconds: float = 0.5,
    n_runs: int = 3,
    duration: float = 30.0,
    base_seed: int = 62,
    backend: Optional[ExecutionBackend] = None,
) -> CompetingResult:
    """RemyCC vs Cubic: exponential flow lengths of mean 100 kB and 1 MB."""
    result = CompetingResult(other_name="Cubic")
    for mean_bytes in mean_flow_bytes:
        row = _competing_run(
            "cubic",
            "Cubic",
            ByteFlowWorkload(
                flow_size=ExponentialDistribution(mean_bytes),
                mean_off_seconds=mean_off_seconds,
            ),
            setting=f"mean={mean_bytes / 1e3:.0f} kB",
            n_runs=n_runs,
            duration=duration,
            base_seed=base_seed,
            backend=backend,
        )
        result.rows.append(row)
    return result
