"""Figures 4 and 5: the single-bottleneck ("dumbbell") experiments (§5.2).

* **Figure 4**: 15 Mbps link, 150 ms RTT, 1000-packet tail-drop buffer,
  n = 8 senders, each alternating between flows of exponentially distributed
  length (mean 100 kB) and exponentially distributed off time (mean 0.5 s).
* **Figure 5**: same link, n = 12 senders, flow lengths drawn from the
  heavy-tailed ICSI distribution of Figure 3, off time mean 0.2 s.

Both report, per scheme, the median per-sender throughput and queueing delay
(plus the 1-sigma ellipse available from each scheme's summary).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from repro.experiments.base import (
    ExperimentResult,
    SchemeSpec,
    run_cell_experiment,
)
from repro.netsim.network import NetworkSpec
from repro.runner import ExecutionBackend
from repro.scenarios import get_scenario
from repro.traffic.flowsize import icsi_flow_length_distribution
from repro.traffic.onoff import ByteFlowWorkload


def dumbbell_spec(
    n_flows: int,
    link_rate_bps: float = 15e6,
    rtt: float = 0.150,
    buffer_packets: int = 1000,
) -> NetworkSpec:
    """The §5.1 single-bottleneck topology, resolved from the registry cell."""
    return replace(
        get_scenario("fig4-dumbbell8").network,
        link_rate_bps=link_rate_bps,
        rtt=rtt,
        n_flows=n_flows,
        buffer_packets=buffer_packets,
    )


def run_figure4(
    n_flows: int = 8,
    n_runs: int = 4,
    duration: float = 30.0,
    schemes: Optional[Sequence[SchemeSpec]] = None,
    mean_flow_bytes: float = 100e3,
    mean_off_seconds: float = 0.5,
    base_seed: int = 42,
    backend: Optional[ExecutionBackend] = None,
) -> ExperimentResult:
    """Run the Figure 4 scenario and return per-scheme summaries.

    The paper uses 100-second runs repeated at least 128 times; the defaults
    here are scaled down for a pure-Python simulator but the parameters are
    exposed so paper-scale runs can be requested.
    """
    cell = get_scenario("fig4-dumbbell8").override(
        n_flows=n_flows,
        workload=ByteFlowWorkload.exponential(
            mean_flow_bytes=mean_flow_bytes, mean_off_seconds=mean_off_seconds
        ),
    )
    return run_cell_experiment(
        name=f"Figure 4: dumbbell, n={n_flows}, {mean_flow_bytes / 1e3:.0f} kB flows",
        scenario=cell,
        schemes=schemes,
        n_runs=n_runs,
        duration=duration,
        base_seed=base_seed,
        backend=backend,
        parameters={
            "link_rate_bps": cell.network.link_rate_bps,
            "rtt_seconds": 0.150,
            "n_flows": n_flows,
            "mean_flow_bytes": mean_flow_bytes,
            "mean_off_seconds": mean_off_seconds,
            "n_runs": n_runs,
            "duration": duration,
        },
    )


def run_figure5(
    n_flows: int = 12,
    n_runs: int = 2,
    duration: float = 30.0,
    schemes: Optional[Sequence[SchemeSpec]] = None,
    mean_off_seconds: float = 0.2,
    max_flow_bytes: float = 20e6,
    base_seed: int = 43,
    backend: Optional[ExecutionBackend] = None,
) -> ExperimentResult:
    """Run the Figure 5 scenario (ICSI heavy-tailed flow lengths, n = 12).

    ``max_flow_bytes`` truncates the Pareto tail; the paper's trace tops out
    at 3.3 GB, which a short scaled-down run could never finish, so a lower
    ceiling keeps the workload comparable to the simulated duration while
    preserving the heavy tail.
    """
    cell = get_scenario("fig5-dumbbell12").override(
        n_flows=n_flows,
        workload=ByteFlowWorkload(
            flow_size=icsi_flow_length_distribution(maximum_bytes=max_flow_bytes),
            mean_off_seconds=mean_off_seconds,
        ),
    )
    return run_cell_experiment(
        name=f"Figure 5: dumbbell, n={n_flows}, ICSI flow lengths",
        scenario=cell,
        schemes=schemes,
        n_runs=n_runs,
        duration=duration,
        base_seed=base_seed,
        backend=backend,
        parameters={
            "link_rate_bps": cell.network.link_rate_bps,
            "rtt_seconds": 0.150,
            "n_flows": n_flows,
            "flow_length": "Pareto (Figure 3) + 16 kB",
            "mean_off_seconds": mean_off_seconds,
            "n_runs": n_runs,
            "duration": duration,
        },
    )
