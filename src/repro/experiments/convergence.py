"""Figure 6: convergence of a RemyCC flow when cross traffic departs (§5.2).

A RemyCC flow shares the bottleneck with one competing flow.  Midway through
the run the competing flow stops; the paper's sequence plot shows the RemyCC
flow responding within roughly one RTT by doubling its sending rate to
consume the whole bottleneck.  The harness records the RemyCC flow's
cumulative-acknowledgment trajectory and reports the average rate before and
after the departure.

The run goes through the shared cell runner
(:func:`~repro.experiments.base.run_cell_results`): the registry cell
supplies the topology and the RemyCC pair, the harness overrides the
paper-scale knobs and the departure schedule, and the single job carries the
historical seed directly — output is bit-identical to the hand-written
``Simulation`` loop this replaces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.experiments.base import run_cell_results
from repro.runner import ExecutionBackend
from repro.scenarios import ProtocolSpec, get_scenario
from repro.traffic.onoff import FixedOnPeriodWorkload


@dataclass
class ConvergenceResult:
    """Rates of the observed RemyCC flow before and after the competitor departs."""

    departure_time: float
    rate_before_mbps: float
    rate_after_mbps: float
    #: (time, cumulative ack) samples of the observed flow.
    sequence_trace: list[tuple[float, int]]
    link_rate_mbps: float

    @property
    def speedup_after_departure(self) -> float:
        """How much faster the flow sent once it had the link to itself."""
        if self.rate_before_mbps <= 0:
            return float("inf")
        return self.rate_after_mbps / self.rate_before_mbps


def run_figure6(
    tree_name: str = "delta1",
    link_rate_bps: float = 15e6,
    rtt: float = 0.150,
    duration: float = 30.0,
    departure_time: float = 15.0,
    seed: int = 66,
    backend: Optional[ExecutionBackend] = None,
) -> ConvergenceResult:
    """Run the Figure 6 scenario and return the convergence summary."""
    if not 0 < departure_time < duration:
        raise ValueError("departure_time must fall inside the run")
    cell = get_scenario("fig6-convergence").override(
        link_rate_bps=link_rate_bps,
        rtt=rtt,
        protocols=(ProtocolSpec("remy", tree=tree_name),),
        per_flow_workloads=(
            FixedOnPeriodWorkload(start=0.0, duration=duration),        # the observed flow
            FixedOnPeriodWorkload(start=0.0, duration=departure_time),  # the departing competitor
        ),
    )
    spec = cell.network_spec()
    result = run_cell_results(
        cell,
        n_runs=1,
        duration=duration,
        base_seed=seed,
        # Single run at the recorded figure's historical seed, verbatim.
        seed_derivation=lambda _cell, base, run: base + run,
        trace_flows=(0,),
        backend=backend,
    )[0]
    trace = result.flow_stats[0].sequence_trace

    def rate_between(t0: float, t1: float) -> float:
        points = [(t, seq) for t, seq in trace if t0 <= t <= t1]
        if len(points) < 2:
            return 0.0
        (ta, sa), (tb, sb) = points[0], points[-1]
        if tb <= ta:
            return 0.0
        return (sb - sa) * spec.mss_bytes * 8 / (tb - ta) / 1e6

    # Leave a settling margin after the departure and ignore the initial ramp.
    settle = 4 * rtt
    rate_before = rate_between(duration * 0.2, departure_time)
    rate_after = rate_between(departure_time + settle, duration)
    return ConvergenceResult(
        departure_time=departure_time,
        rate_before_mbps=rate_before,
        rate_after_mbps=rate_after,
        sequence_trace=trace,
        link_rate_mbps=link_rate_bps / 1e6,
    )
