"""Shared infrastructure for the experiment harnesses.

A :class:`SchemeSpec` bundles a congestion-control scheme with the bottleneck
queue discipline it requires (Cubic-over-sfqCoDel needs the sfqCoDel gateway,
XCP needs the XCP router, DCTCP needs the ECN-marking RED gateway; everything
else runs over plain DropTail).  :func:`run_scheme` runs one scheme over a
scenario several times with different seeds and folds every sender's
(throughput, queueing delay) point into a :class:`SchemeSummary`.

The scheme × seed fan-out goes through a :mod:`repro.runner` execution
backend: the per-run simulations are independent, so passing a
:class:`~repro.runner.ProcessPoolBackend` spreads them across cores.  The
default :class:`~repro.runner.SerialBackend` reproduces the pre-backend
results bit-identically.  (RemyCC schemes parallelize because the rule table
itself ships to the workers; a scheme whose ``protocol_factory`` is a
closure — rather than a picklable module-level callable such as a protocol
class — fails fast on the process-pool backend and can only run serially.)

Scenarios come from the declarative registry (:mod:`repro.scenarios`): each
figure harness resolves its base cell by name and applies its paper-scale
knobs via :meth:`~repro.scenarios.spec.ScenarioSpec.override`, so the
topology/queue/workload definitions live in exactly one place.
:func:`run_scenario_schemes` is the shorthand for "run these schemes over
that registered cell"; :func:`run_scenario_sweep` batches a whole
``cell × scheme × seed`` grid (collision-free ``mix_seed`` seeding) in one
backend submission — the runner behind the multi-bottleneck path matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

from repro.analysis.frontier import efficient_frontier
from repro.analysis.summary import SchemeSummary, format_summary_table
from repro.core.pretrained import pretrained_remycc
from repro.core.whisker_tree import WhiskerTree
from repro.netsim.sender import Workload
from repro.netsim.simulator import SimulationResult, TopologySpec
from repro.protocols.base import CongestionControl
from repro.protocols.compound import CompoundTCP
from repro.protocols.cubic import Cubic
from repro.protocols.newreno import NewReno
from repro.protocols.remycc import RemyCCProtocol
from repro.protocols.vegas import Vegas
from repro.protocols.xcp import XCP
from repro.runner import ExecutionBackend, SerialBackend, SimJob
from repro.runner.jobs import mix_seed
from repro.scenarios import ScenarioSpec, get_scenario, iter_scenarios

ProtocolFactory = Callable[[], CongestionControl]
WorkloadFactory = Callable[[int], Workload]


@dataclass(frozen=True)
class SchemeSpec:
    """A named congestion-control scheme plus the router support it needs."""

    name: str
    protocol_factory: ProtocolFactory
    #: Queue discipline the scheme runs over (None = keep the scenario's queue).
    queue: Optional[str] = None
    #: RemyCC rule table, when the scheme is a RemyCC.  Set so the scheme can
    #: be described picklably to a process-pool backend (the factory lambda
    #: closing over the tree cannot cross a process boundary).
    tree: Optional[WhiskerTree] = None

    def make_protocols(self, n_flows: int) -> list[CongestionControl]:
        return [self.protocol_factory() for _ in range(n_flows)]


def remycc_scheme(tree_name: str, label: Optional[str] = None) -> SchemeSpec:
    """A scheme running the named pretrained RemyCC over DropTail."""
    tree = pretrained_remycc(tree_name)
    label = label if label is not None else f"Remy {tree_name}"
    return SchemeSpec(label, lambda t=tree: RemyCCProtocol(t), queue=None, tree=tree)


def remycc_scheme_from_tree(tree: WhiskerTree, label: str) -> SchemeSpec:
    """A scheme running an arbitrary (e.g. freshly optimized) rule table."""
    return SchemeSpec(label, lambda t=tree: RemyCCProtocol(t), queue=None, tree=tree)


def standard_schemes(
    include_remy: bool = True,
    remy_names: Sequence[str] = ("delta0.1", "delta1", "delta10"),
) -> list[SchemeSpec]:
    """The comparison set of Figures 4-9.

    End-to-end schemes (NewReno, Vegas, Cubic, Compound) and the two schemes
    that need in-network assistance (Cubic-over-sfqCoDel and XCP), plus the
    three general-purpose RemyCCs.
    """
    schemes = [
        SchemeSpec("NewReno", NewReno),
        SchemeSpec("Vegas", Vegas),
        SchemeSpec("Cubic", Cubic),
        SchemeSpec("Compound", CompoundTCP),
        SchemeSpec("Cubic/sfqCoDel", Cubic, queue="sfqcodel"),
        SchemeSpec("XCP", XCP, queue="xcp"),
    ]
    if include_remy:
        for name in remy_names:
            schemes.append(remycc_scheme(name, label=f"Remy d={name.removeprefix('delta')}"))
    return schemes


def _scheme_jobs(
    scheme: SchemeSpec,
    spec: TopologySpec,
    workload_factory: WorkloadFactory,
    n_runs: int,
    duration: float,
    base_seed: int,
    max_events: Optional[int],
    first_job_id: int,
    seed_for_run: Optional[Callable[[int, int], int]] = None,
    trace_flows: tuple[int, ...] = (),
) -> list[SimJob]:
    """Build the ``n_runs`` jobs for one scheme over a scenario.

    Seeds depend only on ``(base_seed, run_index)`` — never on the scheme or
    on batch position — so every scheme of a figure is compared on identical
    packet-level randomness and batching jobs across schemes cannot change
    any result.  ``seed_for_run`` customizes the derivation (the sweep runner
    passes a ``mix_seed``-based one; the default keeps the recorded figures'
    historical ``base_seed * 10_007 + run_index`` arithmetic bit-identical).
    """
    scenario_spec = spec.with_queue(scheme.queue) if scheme.queue is not None else spec
    if seed_for_run is None:
        seed_for_run = lambda base, run: base * 10_007 + run  # noqa: E731
    jobs = []
    for run_index in range(n_runs):
        workloads = tuple(
            workload_factory(flow_id) for flow_id in range(scenario_spec.n_flows)
        )
        common = dict(
            job_id=first_job_id + run_index,
            spec=scenario_spec,
            duration=duration,
            seed=seed_for_run(base_seed, run_index),
            workloads=workloads,
            max_events=max_events,
            trace_flows=trace_flows,
        )
        if scheme.tree is not None:
            jobs.append(SimJob(tree=scheme.tree, training=False, **common))
        else:
            jobs.append(SimJob(protocol_factory=scheme.protocol_factory, **common))
    return jobs


def run_scheme(
    scheme: SchemeSpec,
    spec: TopologySpec,
    workload_factory: WorkloadFactory,
    n_runs: int = 4,
    duration: float = 30.0,
    base_seed: int = 0,
    max_events: Optional[int] = None,
    backend: Optional[ExecutionBackend] = None,
) -> SchemeSummary:
    """Run ``scheme`` over the scenario ``n_runs`` times and summarise it.

    The runs are submitted as one batch to ``backend`` (default: the
    bit-identical :class:`~repro.runner.SerialBackend`).
    """
    return run_schemes(
        [scheme],
        spec,
        workload_factory,
        n_runs=n_runs,
        duration=duration,
        base_seed=base_seed,
        max_events=max_events,
        backend=backend,
    )[0]


def run_schemes(
    schemes: Sequence[SchemeSpec],
    spec: TopologySpec,
    workload_factory: WorkloadFactory,
    n_runs: int = 4,
    duration: float = 30.0,
    base_seed: int = 0,
    max_events: Optional[int] = None,
    backend: Optional[ExecutionBackend] = None,
) -> list[SchemeSummary]:
    """Run every scheme over the scenario as ONE backend batch.

    The figure harnesses fan out ``len(schemes) × n_runs`` independent
    simulations; batching them together (rather than one batch per scheme)
    keeps a :class:`~repro.runner.ProcessPoolBackend` saturated across the
    whole figure instead of draining between schemes.  Results are identical
    to per-scheme batches because per-run seeds and workloads depend only on
    ``(base_seed, run_index)``.
    """
    if n_runs <= 0:
        raise ValueError("n_runs must be positive")
    jobs: list[SimJob] = []
    boundaries: list[int] = []
    for scheme in schemes:
        jobs.extend(
            _scheme_jobs(
                scheme,
                spec,
                workload_factory,
                n_runs,
                duration,
                base_seed,
                max_events,
                first_job_id=len(jobs),
            )
        )
        boundaries.append(len(jobs))
    if backend is None:
        backend = SerialBackend()
    results = backend.run_batch(jobs)
    summaries = []
    start = 0
    for scheme, end in zip(schemes, boundaries):
        summary = SchemeSummary(scheme.name)
        for job_result in results[start:end]:
            summary.add_result(job_result.result)
        summaries.append(summary)
        start = end
    return summaries


def run_scheme_results(
    scheme: SchemeSpec,
    spec: TopologySpec,
    workload_factory: WorkloadFactory,
    n_runs: int = 4,
    duration: float = 30.0,
    base_seed: int = 0,
    max_events: Optional[int] = None,
    backend: Optional[ExecutionBackend] = None,
    seed_for_run: Optional[Callable[[int, int], int]] = None,
    trace_flows: tuple[int, ...] = (),
) -> list[SimulationResult]:
    """Per-run raw results for one scheme — the un-folded sibling of
    :func:`run_scheme`.

    Figures whose metric is not a (throughput, delay) cloud — per-flow share
    profiles, objective scores, sequence traces — need each run's
    :class:`~repro.netsim.simulator.SimulationResult` rather than a
    :class:`SchemeSummary` fold.  The fan-out still goes through the shared
    job builder and a backend batch, so seeds/workloads/protocols are
    constructed exactly as :func:`run_scheme` would (``seed_for_run``
    preserves each recorded figure's historical per-run seed arithmetic).
    """
    if n_runs <= 0:
        raise ValueError("n_runs must be positive")
    jobs = _scheme_jobs(
        scheme,
        spec,
        workload_factory,
        n_runs,
        duration,
        base_seed,
        max_events,
        first_job_id=0,
        seed_for_run=seed_for_run,
        trace_flows=trace_flows,
    )
    if backend is None:
        backend = SerialBackend()
    return [job_result.result for job_result in backend.run_batch(jobs)]


def resolve_scenario(scenario: Union[str, ScenarioSpec]) -> ScenarioSpec:
    """Accept either a registered cell name or an explicit spec."""
    if isinstance(scenario, str):
        return get_scenario(scenario)
    return scenario


#: Seed derivation used by the scenario sweep: ``(cell, base, run) -> seed``.
SeedDerivation = Callable[[str, int, int], int]


def legacy_seed(cell_name: str, base_seed: int, run_index: int) -> int:
    """The recorded figures' historical per-run seed arithmetic.

    Cell-independent by design: the committed figure outputs were generated
    with ``base_seed * 10_007 + run_index`` before the sweep runner existed,
    and the figure harnesses must keep reproducing them bit-identically.
    New grids should use :func:`sweep_seed` (collision-free) instead.
    """
    return base_seed * 10_007 + run_index


def run_scenario_schemes(
    scenario: Union[str, ScenarioSpec],
    schemes: Sequence[SchemeSpec],
    n_runs: int = 4,
    duration: Optional[float] = None,
    base_seed: Optional[int] = None,
    max_events: Optional[int] = None,
    backend: Optional[ExecutionBackend] = None,
) -> list[SchemeSummary]:
    """Run every scheme over a registered scenario cell as one backend batch.

    The cell supplies the topology (with any trace materialized), the
    per-flow workloads, and — when not overridden — its canonical duration
    and seed.  Each scheme still swaps in its own protocols and, if it needs
    router support, its own queue discipline.  A single-cell
    :func:`run_scenario_sweep` under the :func:`legacy_seed` derivation, so
    the recorded figure outputs stay bit-identical.
    """
    cell = resolve_scenario(scenario)
    sweep = run_scenario_sweep(
        [cell],
        schemes,
        n_runs=n_runs,
        duration=duration,
        max_events=max_events,
        backend=backend,
        base_seed=base_seed,
        seed_derivation=legacy_seed,
    )
    return sweep[cell.name]


def sweep_seed(cell_name: str, base_seed: int, run_index: int) -> int:
    """Collision-free per-run seed for the scenario sweep grid.

    ``mix_seed`` hashing over ``(cell, base seed, run)``: distinct cells
    sharing a base seed — or distinct ``(base_seed, run_index)`` pairs whose
    arithmetic like ``base * 10_007 + run`` would coincide — never replay
    one another's packet schedules.  Scheme-independent by construction, so
    every scheme of a cell is compared on identical randomness.
    """
    return mix_seed("scenario-sweep", cell_name, base_seed, run_index)


def run_cell_results(
    scenario: Union[str, ScenarioSpec],
    n_runs: int = 1,
    duration: Optional[float] = None,
    base_seed: Optional[int] = None,
    seed_derivation: Optional[SeedDerivation] = None,
    max_events: Optional[int] = None,
    backend: Optional[ExecutionBackend] = None,
    trace_flows: tuple[int, ...] = (),
) -> list[SimulationResult]:
    """Run one cell ``n_runs`` times as a backend batch; raw per-run results.

    The raw-results runner for cells whose protocol set is fixed by the cell
    itself — mixed-protocol cells like the §5.6 coexistence table (a RemyCC
    sharing the bottleneck with Cubic), or single-scheme cells whose figure
    reads per-flow traces — where :func:`run_scenario_sweep`'s
    scheme-swapping fan-out does not apply.  The cell's protocol set,
    workloads and kernel choice travel with the (self-contained, picklable)
    jobs; protocols are instantiated fresh in whichever process runs each
    job, exactly as the hand-written harness loops did per run.

    ``seed_derivation`` maps ``(cell name, base seed, run index)`` to each
    run's seed (default: the collision-free :func:`sweep_seed`); harnesses
    reproducing recorded outputs pass their historical arithmetic.
    """
    if n_runs <= 0:
        raise ValueError("n_runs must be positive")
    cell = resolve_scenario(scenario)
    if seed_derivation is None:
        seed_derivation = sweep_seed
    cell_duration = cell.duration if duration is None else duration
    cell_seed = cell.seed if base_seed is None else base_seed
    spec = cell.network_spec()
    jobs = []
    for run_index in range(n_runs):
        workloads = cell.make_workloads()
        jobs.append(
            SimJob(
                job_id=run_index,
                spec=spec,
                duration=cell_duration,
                seed=seed_derivation(cell.name, cell_seed, run_index),
                workloads=tuple(workloads) if workloads is not None else (),
                scenario=cell,
                max_events=max_events,
                trace_flows=tuple(trace_flows),
                kernel=cell.kernel,
            )
        )
    if backend is None:
        backend = SerialBackend()
    return [job_result.result for job_result in backend.run_batch(jobs)]


def run_scenario_sweep(
    scenarios: Optional[Sequence[Union[str, ScenarioSpec]]],
    schemes: Sequence[SchemeSpec],
    n_runs: int = 4,
    duration: Optional[float] = None,
    max_events: Optional[int] = None,
    backend: Optional[ExecutionBackend] = None,
    base_seed: Optional[int] = None,
    seed_derivation: Optional[SeedDerivation] = None,
) -> dict[str, list[SchemeSummary]]:
    """Run a ``cell × scheme × seed`` grid as ONE backend batch.

    The sweep runner behind the multi-bottleneck/path matrix and (via
    :func:`run_scenario_schemes`) every figure harness: each
    ``(cell, scheme, run)`` simulation of the grid is independent, so the
    whole grid ships to the backend at once and a process pool stays
    saturated across cells, not just within one.  ``scenarios`` accepts
    registered names and/or explicit specs; ``None`` sweeps every registered
    cell.  Returns ``{cell name: [summary per scheme]}``.

    ``base_seed`` overrides every cell's canonical seed (the figure
    harnesses expose it); ``seed_derivation`` maps ``(cell name, base seed,
    run index)`` to each run's simulation seed.  The default is
    :func:`sweep_seed` — the collision-free ``mix_seed`` derivation ROADMAP
    deferred for the recorded figures; the figure harnesses pass
    :func:`legacy_seed` so committed outputs stay bit-identical.
    """
    if n_runs <= 0:
        raise ValueError("n_runs must be positive")
    if seed_derivation is None:
        seed_derivation = sweep_seed
    cells = [resolve_scenario(s) for s in scenarios] if scenarios is not None else iter_scenarios()
    jobs: list[SimJob] = []
    boundaries: list[tuple[str, str, int]] = []  # (cell, scheme, end index)
    for cell in cells:
        spec = cell.network_spec()
        workload_factory = cell.workload_factory()
        cell_duration = cell.duration if duration is None else duration
        cell_seed = cell.seed if base_seed is None else base_seed
        seed_for_run = lambda base, run, _name=cell.name: seed_derivation(_name, base, run)  # noqa: E731
        for scheme in schemes:
            jobs.extend(
                _scheme_jobs(
                    scheme,
                    spec,
                    workload_factory,
                    n_runs,
                    cell_duration,
                    cell_seed,
                    max_events,
                    first_job_id=len(jobs),
                    seed_for_run=seed_for_run,
                )
            )
            boundaries.append((cell.name, scheme.name, len(jobs)))
    if backend is None:
        backend = SerialBackend()
    results = backend.run_batch(jobs)
    sweep: dict[str, list[SchemeSummary]] = {}
    start = 0
    for cell_name, scheme_name, end in boundaries:
        summary = SchemeSummary(scheme_name)
        for job_result in results[start:end]:
            summary.add_result(job_result.result)
        sweep.setdefault(cell_name, []).append(summary)
        start = end
    return sweep


@dataclass
class ExperimentResult:
    """Result of a figure-style experiment: one summary per scheme."""

    name: str
    summaries: dict[str, SchemeSummary] = field(default_factory=dict)
    #: Free-form metadata (scenario parameters) recorded for EXPERIMENTS.md.
    parameters: dict[str, object] = field(default_factory=dict)

    def add(self, summary: SchemeSummary) -> None:
        self.summaries[summary.scheme] = summary

    def __getitem__(self, scheme: str) -> SchemeSummary:
        return self.summaries[scheme]

    def schemes(self) -> list[str]:
        return list(self.summaries)

    def frontier(self) -> list[SchemeSummary]:
        """Schemes on the efficient (throughput vs queueing delay) frontier."""
        return efficient_frontier(list(self.summaries.values()))

    def frontier_names(self) -> list[str]:
        return [summary.scheme for summary in self.frontier()]

    def format_table(self) -> str:
        ordered = sorted(
            self.summaries.values(),
            key=lambda s: s.median_throughput_mbps(),
            reverse=True,
        )
        return f"== {self.name} ==\n" + format_summary_table(ordered)


def run_cell_experiment(
    name: str,
    scenario: Union[str, ScenarioSpec],
    schemes: Optional[Sequence[SchemeSpec]] = None,
    n_runs: int = 4,
    duration: Optional[float] = None,
    base_seed: Optional[int] = None,
    max_events: Optional[int] = None,
    backend: Optional[ExecutionBackend] = None,
    parameters: Optional[dict[str, object]] = None,
) -> ExperimentResult:
    """One figure-style experiment: a cell, a scheme set, one folded result.

    The shared tail of every ``run_figure*`` harness — resolve the default
    scheme list, run the whole ``scheme × run`` fan-out as one backend batch
    (a single-cell :func:`run_scenario_sweep` under :func:`legacy_seed`
    seeding, so recorded outputs are bit-identical) and fold the summaries
    into an :class:`ExperimentResult`.
    """
    schemes = list(schemes) if schemes is not None else standard_schemes()
    result = ExperimentResult(name=name, parameters=dict(parameters or {}))
    for summary in run_scenario_schemes(
        scenario,
        schemes,
        n_runs=n_runs,
        duration=duration,
        base_seed=base_seed,
        max_events=max_events,
        backend=backend,
    ):
        result.add(summary)
    return result
