"""Figures 7, 8 and 9: trace-driven cellular (LTE) downlink experiments (§5.3).

The bottleneck is a :class:`~repro.netsim.link.TraceDrivenLink` replaying a
synthetic LTE-like delivery trace (see :mod:`repro.traces.cellular` and the
substitution table in DESIGN.md), with a 50 ms baseline RTT and a
1000-packet tail-drop buffer.  Senders alternate between exponentially
distributed transfers (mean 100 kB) and exponentially distributed pauses
(mean 0.5 s).  These scenarios probe "model mismatch": the general-purpose
RemyCCs were designed for 10-20 Mbps fixed-rate links, not a 0-50 Mbps
time-varying one.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from repro.experiments.base import (
    ExperimentResult,
    SchemeSpec,
    run_cell_experiment,
)
from repro.netsim.network import NetworkSpec
from repro.runner import ExecutionBackend
from repro.scenarios import TraceSpec, get_scenario


def cellular_spec(
    delivery_trace: Sequence[float],
    n_flows: int,
    rtt: float = 0.050,
    buffer_packets: int = 1000,
) -> NetworkSpec:
    """Trace-driven bottleneck with the §5.3 parameters (registry-based)."""
    return replace(
        get_scenario("fig7-lte4").network,
        delivery_trace=list(delivery_trace),
        rtt=rtt,
        n_flows=n_flows,
        buffer_packets=buffer_packets,
    )


def _run_cellular(
    name: str,
    base_cell: str,
    trace_kind: str,
    trace_seed: int,
    n_flows: int,
    n_runs: int,
    duration: float,
    schemes: Optional[Sequence[SchemeSpec]],
    base_seed: int,
    backend: Optional[ExecutionBackend] = None,
) -> ExperimentResult:
    # The registry cell carries the topology; the trace is re-described at
    # the harness's duration so it covers the whole run without cycling.
    # Trace materialization is seed-deterministic, so the packet count
    # recorded below matches the trace each run replays.
    cell = get_scenario(base_cell).override(
        n_flows=n_flows,
        trace=TraceSpec(trace_kind, duration_seconds=duration, seed=trace_seed),
    )
    return run_cell_experiment(
        name=name,
        scenario=cell,
        schemes=schemes,
        n_runs=n_runs,
        duration=duration,
        base_seed=base_seed,
        backend=backend,
        parameters={
            "n_flows": n_flows,
            "rtt_seconds": 0.050,
            "trace_packets": len(cell.network_spec().delivery_trace),
            "n_runs": n_runs,
            "duration": duration,
        },
    )


def run_figure7(
    n_flows: int = 4,
    n_runs: int = 2,
    duration: float = 30.0,
    schemes: Optional[Sequence[SchemeSpec]] = None,
    trace_seed: int = 1,
    base_seed: int = 71,
    backend: Optional[ExecutionBackend] = None,
) -> ExperimentResult:
    """Figure 7: Verizon LTE downlink trace, n = 4 senders."""
    return _run_cellular(
        f"Figure 7: Verizon LTE trace, n={n_flows}",
        "fig7-lte4",
        "verizon",
        trace_seed,
        n_flows,
        n_runs,
        duration,
        schemes,
        base_seed,
        backend=backend,
    )


def run_figure8(
    n_flows: int = 8,
    n_runs: int = 2,
    duration: float = 30.0,
    schemes: Optional[Sequence[SchemeSpec]] = None,
    trace_seed: int = 1,
    base_seed: int = 72,
    backend: Optional[ExecutionBackend] = None,
) -> ExperimentResult:
    """Figure 8: Verizon LTE downlink trace, n = 8 senders."""
    return _run_cellular(
        f"Figure 8: Verizon LTE trace, n={n_flows}",
        "fig8-lte8",
        "verizon",
        trace_seed,
        n_flows,
        n_runs,
        duration,
        schemes,
        base_seed,
        backend=backend,
    )


def run_figure9(
    n_flows: int = 4,
    n_runs: int = 2,
    duration: float = 30.0,
    schemes: Optional[Sequence[SchemeSpec]] = None,
    trace_seed: int = 2,
    base_seed: int = 73,
    backend: Optional[ExecutionBackend] = None,
) -> ExperimentResult:
    """Figure 9: AT&T LTE downlink trace, n = 4 senders."""
    return _run_cellular(
        f"Figure 9: AT&T LTE trace, n={n_flows}",
        "fig9-att4",
        "att",
        trace_seed,
        n_flows,
        n_runs,
        duration,
        schemes,
        base_seed,
        backend=backend,
    )
