"""Figures 7, 8 and 9: trace-driven cellular (LTE) downlink experiments (§5.3).

The bottleneck is a :class:`~repro.netsim.link.TraceDrivenLink` replaying a
synthetic LTE-like delivery trace (see :mod:`repro.traces.cellular` and the
substitution table in DESIGN.md), with a 50 ms baseline RTT and a
1000-packet tail-drop buffer.  Senders alternate between exponentially
distributed transfers (mean 100 kB) and exponentially distributed pauses
(mean 0.5 s).  These scenarios probe "model mismatch": the general-purpose
RemyCCs were designed for 10-20 Mbps fixed-rate links, not a 0-50 Mbps
time-varying one.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.base import (
    ExperimentResult,
    SchemeSpec,
    run_schemes,
    standard_schemes,
)
from repro.netsim.network import NetworkSpec
from repro.runner import ExecutionBackend
from repro.traces.cellular import att_lte_trace, verizon_lte_trace
from repro.traffic.onoff import ByteFlowWorkload


def cellular_spec(
    delivery_trace: Sequence[float],
    n_flows: int,
    rtt: float = 0.050,
    buffer_packets: int = 1000,
) -> NetworkSpec:
    """Trace-driven bottleneck with the §5.3 parameters."""
    return NetworkSpec(
        link_rate_bps=15e6,  # nominal; ignored in favour of the trace
        delivery_trace=list(delivery_trace),
        rtt=rtt,
        n_flows=n_flows,
        queue="droptail",
        buffer_packets=buffer_packets,
    )


def _run_cellular(
    name: str,
    delivery_trace: Sequence[float],
    n_flows: int,
    n_runs: int,
    duration: float,
    schemes: Optional[Sequence[SchemeSpec]],
    base_seed: int,
    backend: Optional[ExecutionBackend] = None,
) -> ExperimentResult:
    spec = cellular_spec(delivery_trace, n_flows)
    schemes = list(schemes) if schemes is not None else standard_schemes()

    def workload(_flow_id: int) -> ByteFlowWorkload:
        return ByteFlowWorkload.exponential(mean_flow_bytes=100e3, mean_off_seconds=0.5)

    result = ExperimentResult(
        name=name,
        parameters={
            "n_flows": n_flows,
            "rtt_seconds": 0.050,
            "trace_packets": len(delivery_trace),
            "n_runs": n_runs,
            "duration": duration,
        },
    )
    # One batch covers the whole figure (scheme × run fan-out).
    for summary in run_schemes(
        schemes,
        spec,
        workload,
        n_runs=n_runs,
        duration=duration,
        base_seed=base_seed,
        backend=backend,
    ):
        result.add(summary)
    return result


def run_figure7(
    n_flows: int = 4,
    n_runs: int = 2,
    duration: float = 30.0,
    schemes: Optional[Sequence[SchemeSpec]] = None,
    trace_seed: int = 1,
    base_seed: int = 71,
    backend: Optional[ExecutionBackend] = None,
) -> ExperimentResult:
    """Figure 7: Verizon LTE downlink trace, n = 4 senders."""
    trace = verizon_lte_trace(duration_seconds=duration, seed=trace_seed)
    return _run_cellular(
        f"Figure 7: Verizon LTE trace, n={n_flows}",
        trace,
        n_flows,
        n_runs,
        duration,
        schemes,
        base_seed,
        backend=backend,
    )


def run_figure8(
    n_flows: int = 8,
    n_runs: int = 2,
    duration: float = 30.0,
    schemes: Optional[Sequence[SchemeSpec]] = None,
    trace_seed: int = 1,
    base_seed: int = 72,
    backend: Optional[ExecutionBackend] = None,
) -> ExperimentResult:
    """Figure 8: Verizon LTE downlink trace, n = 8 senders."""
    trace = verizon_lte_trace(duration_seconds=duration, seed=trace_seed)
    return _run_cellular(
        f"Figure 8: Verizon LTE trace, n={n_flows}",
        trace,
        n_flows,
        n_runs,
        duration,
        schemes,
        base_seed,
        backend=backend,
    )


def run_figure9(
    n_flows: int = 4,
    n_runs: int = 2,
    duration: float = 30.0,
    schemes: Optional[Sequence[SchemeSpec]] = None,
    trace_seed: int = 2,
    base_seed: int = 73,
    backend: Optional[ExecutionBackend] = None,
) -> ExperimentResult:
    """Figure 9: AT&T LTE downlink trace, n = 4 senders."""
    trace = att_lte_trace(duration_seconds=duration, seed=trace_seed)
    return _run_cellular(
        f"Figure 9: AT&T LTE trace, n={n_flows}",
        trace,
        n_flows,
        n_runs,
        duration,
        schemes,
        base_seed,
        backend=backend,
    )
