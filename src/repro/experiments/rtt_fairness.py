"""Figure 10: RTT fairness of RemyCCs versus Cubic-over-sfqCoDel (§5.4).

Four senders share a 10 Mbps tail-drop bottleneck; their round-trip times are
50, 100, 150 and 200 ms.  Flow lengths follow the ICSI distribution of
Figure 3 with a mean off time of 0.2 s.  The figure reports each flow's
*normalised throughput share* as a function of its RTT: a perfectly RTT-fair
scheme would give every flow 0.25.  The paper finds that the RemyCCs are
RTT-unfair, but less so than Cubic-over-sfqCoDel.

Each scheme's runs go through the shared raw-results runner
(:func:`~repro.experiments.base.run_scheme_results`) under the historical
``base_seed * 577 + run_index`` seeds, bit-identical to the hand-written
``Simulation`` loop this replaces.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.analysis.fairness import jain_index, normalized_shares
from repro.experiments.base import SchemeSpec, remycc_scheme, run_scheme_results
from repro.protocols.cubic import Cubic
from repro.runner import ExecutionBackend
from repro.scenarios import FIGURE10_RTTS, get_scenario
from repro.traffic.flowsize import icsi_flow_length_distribution
from repro.traffic.onoff import ByteFlowWorkload

__all__ = ["FIGURE10_RTTS", "RttFairnessResult", "run_figure10", "format_figure10"]


@dataclass
class RttFairnessResult:
    """Normalised throughput share per RTT for one scheme."""

    scheme: str
    rtts: tuple[float, ...]
    #: Mean normalised share per flow (same order as ``rtts``), over all runs.
    shares: list[float] = field(default_factory=list)
    #: Jain's index of the mean allocation.
    jain: float = 0.0
    #: Standard error of each share over runs.
    share_stderr: list[float] = field(default_factory=list)

    def share_spread(self) -> float:
        """Max share minus min share: 0 for a perfectly RTT-fair scheme."""
        return max(self.shares) - min(self.shares) if self.shares else 0.0


def default_schemes() -> list[SchemeSpec]:
    """The four schemes of Figure 10."""
    return [
        SchemeSpec("Cubic/sfqCoDel", Cubic, queue="sfqcodel"),
        remycc_scheme("delta0.1", label="Remy d=0.1"),
        remycc_scheme("delta1", label="Remy d=1"),
        remycc_scheme("delta10", label="Remy d=10"),
    ]


def run_figure10(
    schemes: Optional[Sequence[SchemeSpec]] = None,
    n_runs: int = 4,
    duration: float = 30.0,
    link_rate_bps: float = 10e6,
    mean_off_seconds: float = 0.2,
    max_flow_bytes: float = 20e6,
    base_seed: int = 100,
    backend: Optional[ExecutionBackend] = None,
) -> list[RttFairnessResult]:
    """Run the differing-RTT scenario and return per-scheme share profiles."""
    schemes = list(schemes) if schemes is not None else default_schemes()
    flow_sizes = icsi_flow_length_distribution(maximum_bytes=max_flow_bytes)
    results = []
    for scheme in schemes:
        # The registry cell pins the four RTTs; only the queue (and the
        # swept link rate) vary per scheme.
        spec = get_scenario("fig10-rtt-fairness").override(
            link_rate_bps=link_rate_bps,
            queue=scheme.queue if scheme.queue is not None else "droptail",
        ).network_spec()
        run_results = run_scheme_results(
            scheme,
            spec,
            lambda _fid: ByteFlowWorkload(
                flow_size=flow_sizes, mean_off_seconds=mean_off_seconds
            ),
            n_runs=n_runs,
            duration=duration,
            base_seed=base_seed,
            seed_for_run=lambda base, run: base * 577 + run,
            backend=backend,
        )
        per_run_shares: list[list[float]] = []
        for run_result in run_results:
            throughputs = [stats.throughput_bps() for stats in run_result.flow_stats]
            per_run_shares.append(normalized_shares(throughputs))

        mean_shares = [
            statistics.fmean(run[i] for run in per_run_shares)
            for i in range(len(FIGURE10_RTTS))
        ]
        stderr = []
        for i in range(len(FIGURE10_RTTS)):
            values = [run[i] for run in per_run_shares]
            if len(values) > 1:
                stderr.append(statistics.stdev(values) / len(values) ** 0.5)
            else:
                stderr.append(0.0)
        results.append(
            RttFairnessResult(
                scheme=scheme.name,
                rtts=FIGURE10_RTTS,
                shares=mean_shares,
                jain=jain_index(mean_shares),
                share_stderr=stderr,
            )
        )
    return results


def format_figure10(results: Sequence[RttFairnessResult]) -> str:
    """Plain-text rendering of the Figure 10 share-vs-RTT profiles."""
    header = "scheme              " + "".join(f"  RTT {int(r * 1000):3d}ms" for r in FIGURE10_RTTS)
    lines = ["== Figure 10: normalized throughput share vs RTT ==", header + "     Jain"]
    for result in results:
        shares = "".join(f"   {share:8.3f}" for share in result.shares)
        lines.append(f"{result.scheme:20s}{shares}   {result.jain:6.3f}")
    return "\n".join(lines)
